package fleet

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/policy"
	"repro/internal/runner"
)

// TestBatchedIdentityAcrossWidthsAndWorkers is the tentpole's hard
// constraint: the fleet digest and every quantile sketch must be
// bit-identical to the per-vehicle reference path at every batch width and
// worker count. Width spans the degenerate single-lane batch, a width that
// misaligns with the chunk size, the default, and whole-fleet lanes.
func TestBatchedIdentityAcrossWidthsAndWorkers(t *testing.T) {
	spec := testSpec()
	ref, err := RunWith(context.Background(), spec, Options{Batch: -1})
	if err != nil {
		t.Fatal(err)
	}
	refDigest := ref.Digest()
	for _, width := range []int{1, 7, DefaultBatch, testSpec().Vehicles} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			got, err := RunWith(context.Background(), spec, Options{
				Pool:  runner.New(runner.Workers(workers)),
				Batch: width,
			})
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", width, workers, err)
			}
			if d := got.Digest(); d != refDigest {
				t.Errorf("batch=%d workers=%d: digest %s != reference %s", width, workers, d, refDigest)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("batch=%d workers=%d: result differs structurally from reference", width, workers)
			}
		}
	}
}

// TestBatchedIdentityOtherMethods covers the kernel's slow path (cooling
// on, dual and hybrid architectures): methodologies that never take the
// lockstep bus solve, or mix it with scalar steps, must also digest
// identically to the reference.
func TestBatchedIdentityOtherMethods(t *testing.T) {
	for _, tc := range []struct {
		method   policy.Methodology
		vehicles int
		days     int
	}{
		{policy.MethodologyDual, 24, 3},
		{policy.MethodologyCooling, 24, 3},
		{policy.MethodologyBattery, 24, 3},
		{policy.MethodologyOTEM, 6, 1},
	} {
		spec := Spec{Vehicles: tc.vehicles, Days: tc.days, Seed: 99, Method: tc.method, RouteSeconds: 120}
		ref, err := RunWith(context.Background(), spec, Options{Batch: -1})
		if err != nil {
			t.Fatalf("%s reference: %v", tc.method, err)
		}
		for _, width := range []int{1, 7, DefaultBatch} {
			got, err := RunWith(context.Background(), spec, Options{Batch: width})
			if err != nil {
				t.Fatalf("%s batch=%d: %v", tc.method, width, err)
			}
			if got.Digest() != ref.Digest() {
				t.Errorf("%s batch=%d: digest %s != reference %s",
					tc.method, width, got.Digest(), ref.Digest())
			}
		}
	}
}

// TestRunUsesBatchedDefault pins that the plain Run entry point (the
// facade's path) produces the reference outcome too — the batched rollout
// is the default, not an opt-in fork.
func TestRunUsesBatchedDefault(t *testing.T) {
	spec := testSpec()
	ref, err := RunWith(context.Background(), spec, Options{Batch: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != ref.Digest() {
		t.Fatalf("default Run digest %s != per-vehicle reference %s", got.Digest(), ref.Digest())
	}
}
