package fleet

import (
	"math/rand"

	"repro/internal/drivecycle"
)

// This file draws per-vehicle scenarios: a usage class (which shapes the
// synthesized drive cycle), a climate band (which sets the ambient and the
// HVAC load) and a day-by-day plug sequence from the EV plug-state model
// (0 unplugged, 1 plugged-and-charging, 2 on vacation, 3 plugged ahead of
// a vacation — the residential-EMS state machine the roadmap points at).
// All randomness flows through a per-vehicle *rand.Rand seeded from
// (fleet seed, vehicle index) with a SplitMix64 mix, so vehicle i's
// scenario is a pure function of the spec — the property the detflow lint
// rule enforces and the parallelism-identity test replays.

// vehicleSeed derives a well-mixed, collision-resistant seed for one
// vehicle from the fleet seed — SplitMix64's finalizer, the standard way
// to fan one seed out into decorrelated streams.
func vehicleSeed(fleetSeed int64, vehicle int) int64 {
	z := uint64(fleetSeed) + 0x9e3779b97f4a7c15*uint64(vehicle+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// UsageClass names a driving pattern; it is half of a scenario family.
type UsageClass string

// The three usage classes of the fleet model, in sampling order.
const (
	// UsageCommuter is a suburban commute: moderate speeds, few stops.
	UsageCommuter UsageClass = "commuter"
	// UsageDelivery is urban stop-and-go: low speeds, dense stops.
	UsageDelivery UsageClass = "delivery"
	// UsageHighway is sustained high speed with rare stops.
	UsageHighway UsageClass = "highway"
)

// ClimateBand names an ambient-temperature band; the other half of a
// scenario family.
type ClimateBand string

// The three climate bands, in sampling order, with their kelvin ranges.
const (
	// ClimateCold spans 265–280 K (−8…7 °C): cabin heating load.
	ClimateCold ClimateBand = "cold"
	// ClimateTemperate spans 285–298 K (12…25 °C): light HVAC.
	ClimateTemperate ClimateBand = "temperate"
	// ClimateHot spans 300–313 K (27…40 °C): heavy A/C and hot packs.
	ClimateHot ClimateBand = "hot"
)

// dayKind is one day of a vehicle's plug sequence (snippet-3 plug states).
type dayKind uint8

const (
	dayUnplugged   dayKind = iota // 0: drive, no charger available
	dayPlugged                    // 1: drive, recharge overnight
	dayVacation                   // 2: parked, nothing happens
	dayPreVacation                // 3: drive, then charge full before leaving
)

// scenario is one vehicle's fully drawn setup.
type scenario struct {
	usage    UsageClass
	climate  ClimateBand
	ambientK float64
	synth    drivecycle.SynthConfig
	days     []dayKind
}

// family renders the scenario-family label ("commuter/hot") the result
// breakdowns group by.
func (sc *scenario) family() string {
	return string(sc.usage) + "/" + string(sc.climate)
}

// usageMix and climateMix are the family sampling weights (cumulative
// form). A 60/25/15 usage split and a 25/50/25 climate split keep every
// family populated at small fleet sizes without hiding the extremes.
var (
	usageMix = []struct {
		cum   float64
		class UsageClass
	}{
		{0.60, UsageCommuter},
		{0.85, UsageDelivery},
		{1.00, UsageHighway},
	}
	climateMix = []struct {
		cum  float64
		band ClimateBand
		lowK float64
		hiK  float64
	}{
		{0.25, ClimateCold, 265, 280},
		{0.75, ClimateTemperate, 285, 298},
		{1.00, ClimateHot, 300, 313},
	}
)

// plugModel are the day-transition probabilities of the plug-state model.
type plugModel struct {
	// pPlug is the chance an ordinary day ends at a charger.
	pPlug float64
	// pVacationStart is the chance a day starts a vacation block (the day
	// before becomes a pre-vacation full charge).
	pVacationStart float64
	// vacationDaysMax bounds one vacation block, days.
	vacationDaysMax int
}

var defaultPlugModel = plugModel{pPlug: 0.8, pVacationStart: 0.03, vacationDaysMax: 7}

// drawScenario samples vehicle i's complete scenario from its seeded RNG.
// The draw order is fixed and documented because it is part of the
// determinism contract: usage, climate, ambient, route shape, then the
// day sequence.
func drawScenario(spec Spec, vehicle int) scenario {
	rng := rand.New(rand.NewSource(vehicleSeed(spec.Seed, vehicle)))
	var sc scenario

	u := rng.Float64()
	sc.usage = usageMix[len(usageMix)-1].class
	for _, m := range usageMix {
		if u < m.cum {
			sc.usage = m.class
			break
		}
	}

	c := rng.Float64()
	last := climateMix[len(climateMix)-1]
	sc.climate, sc.ambientK = last.band, last.lowK
	for _, m := range climateMix {
		if c < m.cum {
			sc.climate = m.band
			sc.ambientK = m.lowK + rng.Float64()*(m.hiK-m.lowK)
			break
		}
	}

	sc.synth = synthFor(sc.usage, spec.RouteSeconds, rng.Int63())

	sc.days = make([]dayKind, spec.Days)
	pm := defaultPlugModel
	for d := 0; d < spec.Days; d++ {
		if rng.Float64() < pm.pVacationStart && d+1 < spec.Days {
			sc.days[d] = dayPreVacation
			span := 1 + rng.Intn(pm.vacationDaysMax)
			for v := 0; v < span && d+1+v < spec.Days; v++ {
				sc.days[d+1+v] = dayVacation
			}
			d += span
			continue
		}
		if rng.Float64() < pm.pPlug {
			sc.days[d] = dayPlugged
		} else {
			sc.days[d] = dayUnplugged
		}
	}
	return sc
}

// synthFor shapes the micro-trip synthesiser for a usage class. The
// per-vehicle seed makes every vehicle's route a distinct realization of
// its class.
func synthFor(u UsageClass, routeSeconds float64, seed int64) drivecycle.SynthConfig {
	cfg := drivecycle.SynthConfig{
		Name:           "FLEET-" + string(u),
		TargetDuration: routeSeconds,
		Seed:           seed,
	}
	switch u {
	case UsageDelivery:
		cfg.MeanPeakKmh = 35
		cfg.PeakJitter = 0.5
		cfg.MaxAccel = 2.0
		cfg.MeanCruise = 15
		cfg.MeanIdle = 25
	case UsageHighway:
		cfg.MeanPeakKmh = 105
		cfg.PeakJitter = 0.15
		cfg.MaxAccel = 2.0
		cfg.MeanCruise = 180
		cfg.MeanIdle = 8
	default: // UsageCommuter
		cfg.MeanPeakKmh = 60
		cfg.PeakJitter = 0.4
		cfg.MaxAccel = 2.5
		cfg.MeanCruise = 40
		cfg.MeanIdle = 12
	}
	return cfg
}

// SynthConfigFor exposes the per-usage-class route synthesiser to the
// route-preview layer (internal/hmpc): a previewed synthetic route is a
// realization of the same scenario model a fleet vehicle of this class
// would draw, so hierarchical-MPC studies and fleet sweeps share one
// route distribution.
func SynthConfigFor(u UsageClass, routeSeconds float64, seed int64) drivecycle.SynthConfig {
	return synthFor(u, routeSeconds, seed)
}

// FamilyNames lists every scenario family in canonical (sorted-by-
// construction) order: usage classes in sampling order × climate bands in
// sampling order.
func FamilyNames() []string {
	var out []string
	for _, u := range usageMix {
		for _, c := range climateMix {
			out = append(out, string(u.class)+"/"+string(c.band))
		}
	}
	return out
}
