// Package fleet is the Monte Carlo fleet simulator: it steps N simulated
// vehicles, each through its own seeded stochastic scenario (a synthesized
// route shaped by a usage class, an ambient drawn from a climate band, and
// a day-by-day plug/vacation sequence), and aggregates the per-vehicle
// outcomes into streaming quantile sketches — so battery-lifetime claims
// become the distributional statements the roadmap asks for, at O(workers)
// memory no matter the fleet size.
//
// Determinism contract: vehicle i's outcome is a pure function of
// (Spec, i) — fresh plant and controller per vehicle, all randomness from
// the per-vehicle seeded RNG — and vehicles are partitioned into chunks
// whose boundaries depend only on Spec.Vehicles, merged in chunk order.
// The same spec therefore produces bit-identical sketches at one worker
// and at NumCPU, which TestRunParallelIdentity gates.
package fleet

import (
	"context"
	"fmt"

	"repro/internal/canon"
	"repro/internal/charger"
	"repro/internal/core"
	"repro/internal/core/floats"
	"repro/internal/drivecycle"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Spec describes one fleet run. The zero value of every field is completed
// by withDefaults, so the facade and the serve handler can pass specs
// straight through.
type Spec struct {
	// Vehicles is the fleet size (required, ≥ 1).
	Vehicles int
	// Days is how many daily routes each vehicle drives (default 1).
	Days int
	// Seed is the fleet master seed every per-vehicle stream derives from.
	Seed int64
	// Method is the control methodology (default OTEM).
	Method policy.Methodology
	// UltracapF is the bank size in farads (default 25000).
	UltracapF float64
	// RouteSeconds is the target duration of each synthesized daily route
	// (default 600).
	RouteSeconds float64
	// Horizon is the controller forecast window (default: the paper's MPC
	// horizon from core.DefaultConfig).
	Horizon int
	// SketchK overrides the quantile-sketch buffer size (default 256).
	SketchK int
}

func (s Spec) withDefaults() Spec {
	if s.Days == 0 {
		s.Days = 1
	}
	if s.Method == "" {
		s.Method = policy.MethodologyOTEM
	}
	if floats.Zero(s.UltracapF) {
		s.UltracapF = 25000
	}
	if floats.Zero(s.RouteSeconds) {
		s.RouteSeconds = 600
	}
	if s.Horizon == 0 {
		s.Horizon = core.DefaultConfig().Horizon
	}
	if s.SketchK == 0 {
		s.SketchK = defaultSketchK
	}
	return s
}

// Validate reports an error for an unusable spec (after defaults).
func (s Spec) Validate() error {
	s = s.withDefaults()
	switch {
	case s.Vehicles < 1:
		return fmt.Errorf("fleet: Vehicles = %d, must be >= 1", s.Vehicles)
	case s.Days < 1:
		return fmt.Errorf("fleet: Days = %d, must be >= 1", s.Days)
	case s.UltracapF <= 0:
		return fmt.Errorf("fleet: UltracapF = %g, must be > 0", s.UltracapF)
	case s.RouteSeconds < 60:
		return fmt.Errorf("fleet: RouteSeconds = %g, must be >= 60", s.RouteSeconds)
	case s.Horizon < 1:
		return fmt.Errorf("fleet: Horizon = %d, must be >= 1", s.Horizon)
	}
	if _, err := newController(s.Method, s.Horizon); err != nil {
		return err
	}
	return nil
}

// AppendCanonical implements canon.Spec: every field that influences the
// deterministic outcome, in fixed order. Serve cache keys and result
// digests derive from this encoding.
func (s Spec) AppendCanonical(dst []byte) []byte {
	s = s.withDefaults()
	dst = append(dst, "otem.fleet"...)
	dst = canon.Int(dst, "n", s.Vehicles)
	dst = canon.Int(dst, "d", s.Days)
	dst = canon.Int64(dst, "s", s.Seed)
	dst = canon.Str(dst, "m", string(s.Method))
	dst = canon.Float(dst, "u", s.UltracapF)
	dst = canon.Float(dst, "r", s.RouteSeconds)
	dst = canon.Int(dst, "h", s.Horizon)
	dst = canon.Int(dst, "k", s.SketchK)
	return dst
}

// FamilyResult is the per-scenario-family breakdown: how many vehicles the
// family drew and the capacity-loss distribution within it.
type FamilyResult struct {
	// Name is the "usage/climate" family label.
	Name string
	// Vehicles counts fleet members that drew this family.
	Vehicles uint64
	// Qloss sketches the per-vehicle capacity loss (percent) within the
	// family, at a reduced buffer size.
	Qloss *Sketch
}

// Result is the aggregated outcome of a fleet run. All distributions are
// per-vehicle totals over the whole simulated horizon (driving plus
// charging).
type Result struct {
	// Spec is the (defaulted) specification that produced the result.
	Spec Spec
	// Vehicles and Days echo the fleet shape; Steps is the total number of
	// simulated drive steps across the fleet.
	Vehicles int
	Days     int
	Steps    uint64
	// Qloss sketches per-vehicle capacity loss, percent of rated capacity.
	Qloss *Sketch
	// EnergyJ sketches per-vehicle total energy: HEES consumption while
	// driving plus wall energy while charging, joules.
	EnergyJ *Sketch
	// PeakTempK sketches each vehicle's peak battery temperature, kelvin.
	PeakTempK *Sketch
	// Families breaks Qloss down by scenario family, in FamilyNames order.
	Families []FamilyResult
	// FallbackSteps counts infeasible-action fallbacks across the fleet.
	FallbackSteps uint64
	// ThermalViolationSec sums constraint-C1 violation time, seconds.
	ThermalViolationSec float64
}

// Digest fingerprints the complete result state (spec encoding included):
// two runs digest equal exactly when they are bit-identical.
func (r *Result) Digest() string {
	d := NewDigest()
	d.Text(canon.String(r.Spec))
	d.Uint64(uint64(r.Vehicles))
	d.Uint64(uint64(r.Days))
	d.Uint64(r.Steps)
	d.Uint64(r.FallbackSteps)
	d.Float(r.ThermalViolationSec)
	r.Qloss.AppendDigest(d)
	r.EnergyJ.AppendDigest(d)
	r.PeakTempK.AppendDigest(d)
	for _, f := range r.Families {
		d.Text(f.Name)
		d.Uint64(f.Vehicles)
		f.Qloss.AppendDigest(d)
	}
	return d.Sum()
}

// familySketchK sizes the per-family sketches: families see a fraction of
// the fleet, so a smaller buffer holds the same relative accuracy.
const familySketchK = 64

// newAccumulator builds an empty per-chunk (or final) accumulator.
func newAccumulator(spec Spec) *Result {
	r := &Result{
		Spec:      spec,
		Qloss:     NewSketch(spec.SketchK),
		EnergyJ:   NewSketch(spec.SketchK),
		PeakTempK: NewSketch(spec.SketchK),
	}
	for _, name := range FamilyNames() {
		r.Families = append(r.Families, FamilyResult{Name: name, Qloss: NewSketch(familySketchK)})
	}
	return r
}

// add folds one vehicle's outcome in.
func (r *Result) add(o vehicleOutcome) {
	r.Vehicles++
	r.Steps += uint64(o.steps)
	r.FallbackSteps += uint64(o.fallbackSteps)
	r.ThermalViolationSec += o.thermalViolationSec
	r.Qloss.Add(o.qlossPct)
	r.EnergyJ.Add(o.energyJ)
	r.PeakTempK.Add(o.peakTempK)
	f := &r.Families[o.family]
	f.Vehicles++
	f.Qloss.Add(o.qlossPct)
}

// merge folds a chunk accumulator into the final result. Merge order is
// the chunk order, fixed by the caller.
func (r *Result) merge(c *Result) {
	r.Vehicles += c.Vehicles
	r.Steps += c.Steps
	r.FallbackSteps += c.FallbackSteps
	r.ThermalViolationSec += c.ThermalViolationSec
	r.Qloss.Merge(c.Qloss)
	r.EnergyJ.Merge(c.EnergyJ)
	r.PeakTempK.Merge(c.PeakTempK)
	for i := range r.Families {
		r.Families[i].Vehicles += c.Families[i].Vehicles
		r.Families[i].Qloss.Merge(c.Families[i].Qloss)
	}
}

// familyIndex maps a scenario to its position in FamilyNames order.
func familyIndex(sc *scenario) int {
	ui, ci := 0, 0
	for i, m := range usageMix {
		if m.class == sc.usage {
			ui = i
		}
	}
	for i, m := range climateMix {
		if m.band == sc.climate {
			ci = i
		}
	}
	return ui*len(climateMix) + ci
}

// vehicleOutcome is the flat per-vehicle summary the accumulators consume.
type vehicleOutcome struct {
	family              int
	qlossPct            float64
	energyJ             float64
	peakTempK           float64
	steps               int
	fallbackSteps       int
	thermalViolationSec float64
}

// workspace carries the result-neutral buffers one worker reuses across
// its vehicles: the sim scratch (forecast window) and nothing else — the
// plant and controller are rebuilt per vehicle because both are stateful
// and vehicle purity is the determinism contract.
type workspace struct {
	scratch sim.Scratch
}

// newController builds a fresh controller for a methodology (controllers
// are stateful, so every vehicle gets its own).
func newController(method policy.Methodology, horizon int) (sim.Controller, error) {
	if method == policy.MethodologyOTEM {
		cfg := core.DefaultConfig()
		cfg.Horizon = horizon
		return core.New(cfg)
	}
	return policy.ByMethodology(method)
}

// lowSoCGuard forces an opportunistic charge on an unplugged day once the
// state of charge falls this low — a real fleet visits a public charger
// rather than strand the vehicle.
const lowSoCGuard = 0.35

// rollVehicle simulates one vehicle's whole horizon. It is a pure function
// of (spec, index): the workspace only supplies reusable buffers that
// cannot influence the outcome.
func rollVehicle(ctx context.Context, spec Spec, index int, ws *workspace) (vehicleOutcome, error) {
	sc := drawScenario(spec, index)
	out := vehicleOutcome{family: familyIndex(&sc)}

	cycle, err := drivecycle.Synthesize(sc.synth)
	if err != nil {
		return out, fmt.Errorf("fleet: vehicle %d synth: %w", index, err)
	}
	requests := vehicle.MidSizeEV().PowerSeriesAt(cycle, sc.ambientK)

	plant, err := sim.NewPlant(sim.PlantConfig{UltracapF: spec.UltracapF, Ambient: sc.ambientK})
	if err != nil {
		return out, fmt.Errorf("fleet: vehicle %d plant: %w", index, err)
	}
	out.peakTempK = plant.Loop.BatteryTemp
	chg := charger.Default()

	for _, kind := range sc.days {
		if kind == dayVacation {
			continue
		}
		ctrl, err := newController(spec.Method, spec.Horizon)
		if err != nil {
			return out, fmt.Errorf("fleet: vehicle %d controller: %w", index, err)
		}
		startSoC := plant.HEES.Battery.SoC
		res, err := sim.RunContext(ctx, plant, ctrl, requests, sim.Config{
			Horizon: spec.Horizon,
			Scratch: &ws.scratch,
		})
		if err != nil {
			return out, fmt.Errorf("fleet: vehicle %d route: %w", index, err)
		}
		out.steps += res.Steps
		out.fallbackSteps += res.FallbackSteps
		out.thermalViolationSec += res.ThermalViolationSec
		out.qlossPct += res.QlossPct
		out.energyJ += res.HEESEnergyJ
		if res.MaxBatteryTemp > out.peakTempK {
			out.peakTempK = res.MaxBatteryTemp
		}

		// Overnight charging per the plug state: plugged days restore the
		// morning state of charge, pre-vacation days fill the pack, and an
		// unplugged day still charges when the guard trips.
		target := 0.0
		switch kind {
		case dayPlugged:
			target = startSoC
		case dayPreVacation:
			target = 1.0
		case dayUnplugged:
			if plant.HEES.Battery.SoC < lowSoCGuard {
				target = startSoC
			}
		}
		if target > plant.HEES.Battery.SoC {
			cr, err := charger.Charge(plant.HEES.Battery, plant.Loop, chg, target, sc.ambientK)
			if err != nil {
				return out, fmt.Errorf("fleet: vehicle %d charge: %w", index, err)
			}
			out.qlossPct += cr.AgingPct
			out.energyJ += cr.WallEnergyJ
			if cr.PeakTempK > out.peakTempK {
				out.peakTempK = cr.PeakTempK
			}
		}
	}
	return out, nil
}

// Chunking: vehicles are partitioned into at most maxChunks contiguous
// ranges of at least minChunkVehicles each. The partition depends only on
// Spec.Vehicles — never on the worker count — so the merge order (chunk
// index order) is identical at any parallelism, and peak memory is
// O(chunks) accumulators, a constant w.r.t. fleet size.
const (
	maxChunks        = 128
	minChunkVehicles = 8
)

// numChunks returns the chunk count for a fleet size.
func numChunks(vehicles int) int {
	n := (vehicles + minChunkVehicles - 1) / minChunkVehicles
	if n > maxChunks {
		n = maxChunks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// chunkBounds returns chunk c's half-open vehicle range [lo, hi).
func chunkBounds(vehicles, chunks, c int) (lo, hi int) {
	lo = c * vehicles / chunks
	hi = (c + 1) * vehicles / chunks
	return lo, hi
}
