package fleet

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/canon"
	"repro/internal/policy"
	"repro/internal/runner"
)

// testSpec is a fleet small enough for the unit tests but big enough to
// span every chunk-boundary case (multiple chunks, uneven sizes).
func testSpec() Spec {
	return Spec{
		Vehicles:     50,
		Days:         3,
		Seed:         1234,
		Method:       policy.MethodologyParallel,
		RouteSeconds: 120,
	}
}

// TestRunParallelIdentity is the determinism gate of the issue: the same
// spec must produce a byte-identical result (digest over complete sketch
// state) at one worker and at NumCPU workers.
func TestRunParallelIdentity(t *testing.T) {
	spec := testSpec()
	seq, err := Run(context.Background(), spec, runner.New(runner.Workers(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), spec, runner.New(runner.Workers(runtime.NumCPU())), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Digest(), par.Digest(); s != p {
		t.Fatalf("digest differs across worker counts: seq=%s par=%s", s, p)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("results differ structurally across worker counts despite equal digests")
	}
}

// TestRunAggregates sanity-checks the merged result: every vehicle is
// accounted for, family counts partition the fleet, and the physical
// metrics land in plausible ranges.
func TestRunAggregates(t *testing.T) {
	spec := testSpec()
	r, err := Run(context.Background(), spec, runner.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vehicles != spec.Vehicles {
		t.Fatalf("Vehicles = %d, want %d", r.Vehicles, spec.Vehicles)
	}
	if r.Days != spec.Days {
		t.Fatalf("Days = %d, want %d", r.Days, spec.Days)
	}
	if r.Qloss.Count() != uint64(spec.Vehicles) ||
		r.EnergyJ.Count() != uint64(spec.Vehicles) ||
		r.PeakTempK.Count() != uint64(spec.Vehicles) {
		t.Fatalf("sketch counts %d/%d/%d, want %d each",
			r.Qloss.Count(), r.EnergyJ.Count(), r.PeakTempK.Count(), spec.Vehicles)
	}
	var famTotal uint64
	var famQloss uint64
	for _, f := range r.Families {
		famTotal += f.Vehicles
		famQloss += f.Qloss.Count()
		if f.Vehicles != f.Qloss.Count() {
			t.Fatalf("family %s: count %d != sketch count %d", f.Name, f.Vehicles, f.Qloss.Count())
		}
	}
	if famTotal != uint64(spec.Vehicles) || famQloss != uint64(spec.Vehicles) {
		t.Fatalf("family counts sum to %d/%d, want %d", famTotal, famQloss, spec.Vehicles)
	}
	if got, want := len(r.Families), len(FamilyNames()); got != want {
		t.Fatalf("families = %d, want %d", got, want)
	}
	if r.Steps == 0 {
		t.Fatal("no steps simulated")
	}
	if q := r.Qloss.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("median Qloss %g%% implausible", q)
	}
	if p := r.PeakTempK.Quantile(0.5); p < 260 || p > 340 {
		t.Fatalf("median peak temperature %g K implausible", p)
	}
	if e := r.EnergyJ.Min(); e <= 0 {
		t.Fatalf("minimum per-vehicle energy %g J implausible", e)
	}
}

// TestRunMemoryBound gates the O(workers)-not-O(fleet) contract at the
// data-structure level: the retained sample count of every sketch must be
// a function of k, not of the fleet size.
func TestRunMemoryBound(t *testing.T) {
	spec := testSpec()
	spec.Vehicles = 600
	spec.Days = 1
	spec.SketchK = 16
	r, err := Run(context.Background(), spec, runner.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	limit := spec.SketchK * 10 // k × generous level count
	for name, s := range map[string]*Sketch{"qloss": r.Qloss, "energy": r.EnergyJ, "peaktemp": r.PeakTempK} {
		if s.Size() > limit {
			t.Fatalf("%s sketch retains %d values for %d vehicles, want <= %d",
				name, s.Size(), spec.Vehicles, limit)
		}
	}
}

func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSpec(), runner.New(), nil)
	if !errors.Is(err, runner.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunProgress(t *testing.T) {
	spec := testSpec()
	spec.Vehicles = 33
	var dones []int
	_, err := Run(context.Background(), spec, runner.New(runner.Workers(1)), func(done, total int) {
		if total != spec.Vehicles {
			t.Fatalf("progress total = %d, want %d", total, spec.Vehicles)
		}
		dones = append(dones, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != numChunks(spec.Vehicles) {
		t.Fatalf("progress called %d times, want %d", len(dones), numChunks(spec.Vehicles))
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatalf("progress not monotone: %v", dones)
		}
	}
	if dones[len(dones)-1] != spec.Vehicles {
		t.Fatalf("final progress %d, want %d", dones[len(dones)-1], spec.Vehicles)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		ok   bool
	}{
		{"default-ok", func(s *Spec) {}, true},
		{"no-vehicles", func(s *Spec) { s.Vehicles = 0 }, false},
		{"negative-days", func(s *Spec) { s.Days = -1 }, false},
		{"bad-ucap", func(s *Spec) { s.UltracapF = -5 }, false},
		{"short-route", func(s *Spec) { s.RouteSeconds = 10 }, false},
		{"bad-horizon", func(s *Spec) { s.Horizon = -2 }, false},
		{"bad-method", func(s *Spec) { s.Method = "Nonsense" }, false},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mut(&spec)
		err := spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

// TestSpecCanonical pins the canonical encoding: it is the serve cache key
// and part of the result digest, so its exact form is a compatibility
// surface.
func TestSpecCanonical(t *testing.T) {
	spec := testSpec()
	got := canon.String(spec)
	want := "otem.fleet|n=50|d=3|s=1234|m=Parallel|u=25000|r=120|h=40|k=256"
	if got != want {
		t.Fatalf("canonical encoding:\n got %s\nwant %s", got, want)
	}
	// Distinct seeds must produce distinct keys.
	spec.Seed++
	if canon.String(spec) == want {
		t.Fatal("seed change did not change the canonical encoding")
	}
}

// TestDrawScenarioDeterministic: the scenario is a pure function of
// (spec, vehicle), replayable in any order.
func TestDrawScenarioDeterministic(t *testing.T) {
	spec := testSpec().withDefaults()
	for i := 0; i < 20; i++ {
		a, b := drawScenario(spec, i), drawScenario(spec, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("vehicle %d: scenario draw not deterministic", i)
		}
	}
	// Different vehicles must decorrelate (at least some field differs
	// across a window).
	same := 0
	base := drawScenario(spec, 0)
	for i := 1; i < 20; i++ {
		sc := drawScenario(spec, i)
		if sc.ambientK == base.ambientK {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d of 19 vehicles drew the identical ambient — seeds are correlated", same)
	}
}

// TestChunkingInvariants: the partition covers [0, n) exactly once and
// depends only on n.
func TestChunkingInvariants(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 100, 1023, 1024, 1025, 100000} {
		chunks := numChunks(n)
		if chunks < 1 || chunks > maxChunks {
			t.Fatalf("n=%d: numChunks=%d out of range", n, chunks)
		}
		next := 0
		for c := 0; c < chunks; c++ {
			lo, hi := chunkBounds(n, chunks, c)
			if lo != next || hi < lo {
				t.Fatalf("n=%d chunk %d: bounds [%d,%d) not contiguous from %d", n, c, lo, hi, next)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d: chunks cover [0,%d), want [0,%d)", n, next, n)
		}
	}
}

// TestVehicleSeedDecorrelated: neighbouring vehicle indices must map to
// well-separated seeds (the SplitMix64 finalizer property).
func TestVehicleSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := vehicleSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate seed at vehicle %d", i)
		}
		seen[s] = true
	}
}
