package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the saturation behavior the otem-serve admission path
// depends on: a pool that is handed more work than workers must stay
// bounded, cancellation must abandon undispatched work, and panics from
// many concurrent submitters must stay isolated to their own batch.

// TestSaturatedPoolStaysBounded floods a small pool and watches the
// high-water mark of concurrently running jobs.
func TestSaturatedPoolStaysBounded(t *testing.T) {
	const workers = 3
	const jobs = 64
	var running, high, done atomic.Int64
	pool := New(Workers(workers))
	err := pool.Run(context.Background(), jobs, func(ctx context.Context, i int) error {
		n := running.Add(1)
		for {
			h := high.Load()
			if n <= h || high.CompareAndSwap(h, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		running.Add(-1)
		done.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done.Load() != jobs {
		t.Errorf("completed %d of %d jobs", done.Load(), jobs)
	}
	if high.Load() > workers {
		t.Errorf("high-water concurrency %d exceeds the %d-worker bound", high.Load(), workers)
	}
}

// TestCancelAbandonsQueuedJobs cancels while the single worker is stuck
// in job 0: none of the still-queued jobs may start afterwards, and the
// error must match both ErrCanceled and the context cause.
func TestCancelAbandonsQueuedJobs(t *testing.T) {
	const jobs = 32
	var started atomic.Int64
	entered := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	pool := New(Workers(1))
	err := func() error {
		go func() {
			<-entered
			cancel()
		}()
		return pool.Run(ctx, jobs, func(jctx context.Context, i int) error {
			started.Add(1)
			if i == 0 {
				entered <- struct{}{}
				<-jctx.Done() // block until the batch is canceled
				return Canceled(jctx.Err())
			}
			return nil
		})
	}()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	// Job 0 started; everything still in the queue must have been
	// abandoned. The single worker may have dequeued at most job 0.
	if got := started.Load(); got != 1 {
		t.Errorf("%d jobs started, want 1 (queued jobs must not run after cancel)", got)
	}
}

// TestCancelMidQueueReleasesWaiters has jobs blocked on the batch
// context mid-flight across several workers; cancellation must unblock
// every started job and Run must return with no goroutine left running.
func TestCancelMidQueueReleasesWaiters(t *testing.T) {
	const workers = 4
	var inFlight atomic.Int64
	allIn := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-allIn
		cancel()
	}()
	var once sync.Once
	err := New(Workers(workers)).Run(ctx, 16, func(jctx context.Context, i int) error {
		if inFlight.Add(1) == workers {
			once.Do(func() { close(allIn) })
		}
		<-jctx.Done()
		return Canceled(jctx.Err())
	})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if n := inFlight.Load(); n != workers {
		t.Errorf("%d jobs were dispatched, want exactly %d (the worker bound)", n, workers)
	}
}

// TestPanicIsolationConcurrentSubmitters shares one pool between many
// concurrent batch submitters — the otem-serve usage pattern — where
// some batches panic. Each submitter must get its own *PanicError (or
// success), and no panic may escape to the process.
func TestPanicIsolationConcurrentSubmitters(t *testing.T) {
	pool := New(Workers(2))
	const submitters = 12
	errs := make([]error, submitters)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			poisoned := s%3 == 0
			errs[s] = pool.Run(context.Background(), 4, func(ctx context.Context, i int) error {
				if poisoned && i == 2 {
					panic(fmt.Sprintf("submitter %d job %d", s, i))
				}
				return nil
			})
		}(s)
	}
	wg.Wait()

	for s := 0; s < submitters; s++ {
		if s%3 == 0 {
			var pe *PanicError
			if !errors.As(errs[s], &pe) {
				t.Errorf("submitter %d: err = %v, want a *PanicError", s, errs[s])
				continue
			}
			if pe.Job != 2 {
				t.Errorf("submitter %d: panic attributed to job %d, want 2", s, pe.Job)
			}
			want := fmt.Sprintf("submitter %d job 2", s)
			if pe.Value != want {
				t.Errorf("submitter %d: panic value %v, want %q (no cross-batch bleed)", s, pe.Value, want)
			}
			if len(pe.Stack) == 0 {
				t.Errorf("submitter %d: no stack captured", s)
			}
		} else if errs[s] != nil {
			t.Errorf("healthy submitter %d: err = %v", s, errs[s])
		}
	}
}

// TestMapUnderSaturationKeepsOrder pins that results stay in job-index
// order even when jobs finish wildly out of order on a saturated pool.
func TestMapUnderSaturationKeepsOrder(t *testing.T) {
	const jobs = 50
	out, err := Map(context.Background(), New(Workers(3)), jobs, func(ctx context.Context, i int) (int, error) {
		// Earlier jobs sleep longer, so completion order inverts.
		time.Sleep(time.Duration(jobs-i) * 50 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
