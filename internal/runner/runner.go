// Package runner is the bounded worker-pool batch engine every grid
// experiment in the repository executes on: the Fig. 8/9 cycle×methodology
// sweep, the Table I sizing grid, the ablation studies, the hotspot replay
// and the design-space exploration all submit their independent simulation
// jobs here instead of hand-rolling goroutines.
//
// The engine guarantees:
//
//   - bounded parallelism (default GOMAXPROCS), so a 100-point grid never
//     spawns 100 concurrent MPC solves;
//   - cooperative cancellation: the batch context is handed to every job,
//     and canceling it stops dispatching and returns an error matching
//     ErrCanceled via errors.Is;
//   - first-error propagation: one failing job cancels the rest of the
//     batch and its error is returned, annotated with the job index;
//   - panic isolation: a panicking job is converted into a *PanicError
//     instead of crashing the process;
//   - deterministic results: Map returns values in job-index order, so the
//     outcome is bit-identical at parallelism 1 and N.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrCanceled reports that a batch (or a single simulation run) was stopped
// by context cancellation before completing. Match it with errors.Is; the
// underlying context error (context.Canceled or context.DeadlineExceeded)
// is wrapped alongside it.
var ErrCanceled = errors.New("runner: canceled")

// Canceled wraps a context error so that callers can match both ErrCanceled
// and the original cause with errors.Is.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// PanicError is a job panic converted into an error.
type PanicError struct {
	// Job is the index of the panicking job.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Job, e.Value)
}

// Pool executes batches of indexed jobs with bounded parallelism. The zero
// value and a nil *Pool are both valid and use the defaults (GOMAXPROCS
// workers, no progress callback). A Pool is stateless between batches and
// safe for concurrent use.
type Pool struct {
	workers  int
	progress func(done, total int)
}

// Option configures a Pool.
type Option func(*Pool)

// Workers sets the maximum number of jobs in flight. n < 1 selects
// runtime.GOMAXPROCS(0); the pool never starts more workers than jobs.
func Workers(n int) Option { return func(p *Pool) { p.workers = n } }

// Progress registers a callback invoked after each completed job with the
// running completion count and the batch size. Invocations are serialised
// and done is strictly increasing, so the callback can render a progress
// line without its own locking.
func Progress(fn func(done, total int)) Option {
	return func(p *Pool) { p.progress = fn }
}

// New builds a pool from the options.
func New(opts ...Option) *Pool {
	p := &Pool{}
	for _, o := range opts {
		if o != nil {
			o(p)
		}
	}
	return p
}

// config reads the settings, tolerating a nil receiver.
func (p *Pool) config() (workers int, progress func(done, total int)) {
	if p == nil {
		return 0, nil
	}
	return p.workers, p.progress
}

// WorkerCount returns the parallelism the pool would use for a batch of n
// jobs: configured workers clamped to [1, n], defaulting to GOMAXPROCS.
func (p *Pool) WorkerCount(n int) int {
	workers, _ := p.config()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n >= 1 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes jobs 0..n-1 with bounded parallelism and blocks until every
// started job has returned (no goroutines outlive the call). The context
// passed to each job is canceled as soon as the batch stops — because ctx
// fired or a sibling failed — so long-running jobs can abort mid-simulation.
//
// Returns nil when all jobs succeed; an error matching ErrCanceled when ctx
// was canceled first; otherwise the first job error, annotated with its
// index. A panicking job fails the batch with a *PanicError.
func (p *Pool) Run(ctx context.Context, n int, job func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if job == nil {
		return errors.New("runner: nil job")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	_, progress := p.config()

	var (
		next     atomic.Int64 // next job index to dispatch
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("runner: job %d: %w", i, err)
		}
		mu.Unlock()
		cancel() // stop dispatching; abort in-flight jobs cooperatively
	}
	complete := func() {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		progress(done, n)
		mu.Unlock()
	}
	runOne := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return job(ctx, i)
	}

	for w := 0; w < p.WorkerCount(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := runOne(i); err != nil {
					fail(i, err)
					return
				}
				complete()
			}
		}()
	}
	wg.Wait()

	// Cancellation of the caller's context takes precedence: the batch is
	// incomplete by request, not by failure.
	if err := parent.Err(); err != nil {
		return Canceled(err)
	}
	return firstErr
}

// Map runs fn over the indices 0..n-1 on the pool and returns the results
// in job-index order, so the output is identical at any parallelism. On
// error or cancellation the partial results are discarded and only the
// error is returned (see Pool.Run for its shape). A nil pool uses the
// default settings.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative batch size %d", n)
	}
	out := make([]T, n)
	err := p.Run(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v // each slot is owned by exactly one job: no race
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
