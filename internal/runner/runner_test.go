package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderDeterministicAcrossParallelism(t *testing.T) {
	const n = 64
	fn := func(_ context.Context, i int) (float64, error) {
		return float64(i*i) + 0.5, nil
	}
	serial, err := Map(context.Background(), New(Workers(1)), n, fn)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Map(context.Background(), New(Workers(16)), n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("slot %d: %v (serial) vs %v (parallel)", i, serial[i], wide[i])
		}
		if want := float64(i*i) + 0.5; serial[i] != want {
			t.Fatalf("slot %d = %v, want %v (index order broken)", i, serial[i], want)
		}
	}
}

func TestWorkerCountClamping(t *testing.T) {
	cases := []struct {
		workers, jobs, want int
	}{
		{0, 10, runtime.GOMAXPROCS(0)}, // default
		{-3, 10, runtime.GOMAXPROCS(0)},
		{4, 10, 4},
		{100, 5, 5}, // never more workers than jobs
		{1, 100, 1}, // serial
		{8, 100, 8}, // bounded
	}
	for _, c := range cases {
		p := New(Workers(c.workers))
		want := c.want
		if want > c.jobs {
			want = c.jobs
		}
		if got := p.WorkerCount(c.jobs); got != want {
			t.Errorf("WorkerCount(workers=%d, jobs=%d) = %d, want %d", c.workers, c.jobs, got, want)
		}
	}
	var nilPool *Pool
	if got := nilPool.WorkerCount(2); got != 2 && got != runtime.GOMAXPROCS(0) {
		t.Errorf("nil pool WorkerCount = %d", got)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const limit = 2
	var inFlight, peak atomic.Int64
	err := New(Workers(limit)).Run(context.Background(), 32, func(context.Context, int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- New(Workers(2)).Run(ctx, 100, func(ctx context.Context, i int) error {
			ran.Add(1)
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // block until the batch is canceled
			return ctx.Err()
		})
	}()
	<-started
	cancel()
	err := <-errCh
	if err == nil {
		t.Fatal("canceled batch returned nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("%d jobs ran after cancellation; dispatch did not stop", n)
	}
}

func TestFirstErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	var mu sync.Mutex
	err := New(Workers(1)).Run(context.Background(), 10, func(_ context.Context, i int) error {
		mu.Lock()
		ran = append(ran, i)
		mu.Unlock()
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := []int{0, 1, 2, 3}; len(ran) != len(want) {
		t.Errorf("ran %v, want %v (jobs after the failure must not start)", ran, want)
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("job failure must not report as cancellation")
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := New(Workers(4)).Run(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking batch returned nil")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 5 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Job:%d Value:%v stack:%dB}", pe.Job, pe.Value, len(pe.Stack))
	}
}

func TestProgressMonotonic(t *testing.T) {
	var calls []int
	p := New(Workers(8), Progress(func(done, total int) {
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		calls = append(calls, done) // serialised by the pool
	}))
	if err := p.Run(context.Background(), 20, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Fatalf("progress called %d times, want 20", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress sequence %v not strictly increasing", calls)
		}
	}
}

func TestNilPoolAndEmptyBatch(t *testing.T) {
	var p *Pool
	if err := p.Run(context.Background(), 0, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	out, err := Map(context.Background(), nil, 3, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[1 2 3]" {
		t.Errorf("Map on nil pool = %v", out)
	}
	if err := p.Run(context.Background(), 3, nil); err == nil {
		t.Error("nil job accepted")
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), New(Workers(2)), 8, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map = (%v, %v), want (nil, error)", out, err)
	}
}

func TestCanceledHelper(t *testing.T) {
	if !errors.Is(Canceled(nil), ErrCanceled) {
		t.Error("Canceled(nil) does not match ErrCanceled")
	}
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Canceled wrap broken: %v", err)
	}
}
