package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil, 1); s.Steps != 0 {
		t.Errorf("nil trace: %+v", s)
	}
	if s := Summarize(&sim.Trace{}, 1); s.Steps != 0 {
		t.Errorf("empty trace: %+v", s)
	}
}

func TestSummarizeSynthetic(t *testing.T) {
	tr := &sim.Trace{
		Time:         []float64{0, 1, 2, 3},
		PowerRequest: []float64{10e3, 80e3, -20e3, 0},
		BatteryTemp:  []float64{298, 300, 301, 299},
		CoolantTemp:  []float64{298, 298, 298, 298},
		SoC:          []float64{1, 0.99, 0.99, 0.99},
		SoE:          []float64{0.5, 0.3, 0.6, 0.6},
		CoolerPower:  []float64{0, 5e3, 0, 0},
		BatteryPower: []float64{10e3, 50e3, 0, 0},
		CapPower:     []float64{0, 30e3, -15e3, 0},
		BatteryHeat:  []float64{100, 900, 50, 10},
	}
	s := Summarize(tr, 1)
	if s.PeakRequestW != 80e3 || s.PeakBatteryW != 50e3 {
		t.Errorf("peaks: %v / %v", s.PeakRequestW, s.PeakBatteryW)
	}
	if math.Abs(s.PeakShavingFrac-0.375) > 1e-12 {
		t.Errorf("shaving = %v, want 0.375", s.PeakShavingFrac)
	}
	if s.RegenOfferedJ != 20e3 {
		t.Errorf("regen offered = %v", s.RegenOfferedJ)
	}
	if s.RegenToCapJ != 15e3 {
		t.Errorf("regen to cap = %v", s.RegenToCapJ)
	}
	if math.Abs(s.RegenCaptureFrac()-0.75) > 1e-12 {
		t.Errorf("capture = %v, want 0.75", s.RegenCaptureFrac())
	}
	if s.CapThroughputJ != 45e3 {
		t.Errorf("throughput = %v, want 45 kJ", s.CapThroughputJ)
	}
	if s.CoolerDutyFrac != 0.25 || s.CoolerEnergyJ != 5e3 {
		t.Errorf("cooler: duty %v energy %v", s.CoolerDutyFrac, s.CoolerEnergyJ)
	}
	if s.TempMinK != 298 || s.TempMaxK != 301 {
		t.Errorf("temp range: %v–%v", s.TempMinK, s.TempMaxK)
	}
	if math.Abs(s.SoESwing-0.3) > 1e-12 {
		t.Errorf("SoE swing = %v, want 0.3", s.SoESwing)
	}
	wantRMS := math.Sqrt((10e3*10e3 + 50e3*50e3) / 4)
	if math.Abs(s.BatteryRMSW-wantRMS) > 1e-6 {
		t.Errorf("RMS = %v, want %v", s.BatteryRMSW, wantRMS)
	}
}

func TestRegenCaptureNoRegen(t *testing.T) {
	s := Summary{}
	if s.RegenCaptureFrac() != 0 {
		t.Error("no-regen capture should be 0")
	}
}

func TestDualShavesMoreThanBatteryOnly(t *testing.T) {
	requests := vehicle.MidSizeEV().PowerSeries(drivecycle.US06().Repeat(2))
	run := func(ctrl sim.Controller) Summary {
		t.Helper()
		plant, err := sim.NewPlant(sim.PlantConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res.Trace, plant.DT)
	}
	dual := run(policy.NewDual())
	battery := run(policy.BatteryOnly{})
	if battery.PeakShavingFrac > 0.01 {
		t.Errorf("battery-only shaving = %v, want ~0", battery.PeakShavingFrac)
	}
	if dual.CapThroughputJ <= battery.CapThroughputJ {
		t.Error("dual must move energy through the capacitor")
	}
	if dual.RegenCaptureFrac() <= 0 {
		t.Error("dual should capture regen into the capacitor")
	}
	if dual.BatteryRMSW >= battery.BatteryRMSW {
		t.Errorf("dual RMS battery power %v should be below battery-only %v",
			dual.BatteryRMSW, battery.BatteryRMSW)
	}
}

func TestWriteRendersAllMetrics(t *testing.T) {
	tr := &sim.Trace{
		Time:         []float64{0},
		PowerRequest: []float64{1e3},
		BatteryTemp:  []float64{300},
		CoolantTemp:  []float64{299},
		SoC:          []float64{0.9},
		SoE:          []float64{0.8},
		CoolerPower:  []float64{100},
		BatteryPower: []float64{1e3},
		CapPower:     []float64{0},
		BatteryHeat:  []float64{10},
	}
	var sb strings.Builder
	Summarize(tr, 1).Write(&sb, "unit")
	out := sb.String()
	for _, want := range []string{"peak request", "cap throughput", "cooler duty", "temp range"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write missing %q", want)
		}
	}
}
