// Package analysis derives methodology-level metrics from simulation
// traces: how much of the load peaks the ultracapacitor shaved off the
// battery, how much regenerative energy was captured, how hard the cooling
// system worked. The experiments use these to explain *why* a methodology
// won, beyond the headline Q_loss/energy numbers.
package analysis

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core/floats"
	"repro/internal/sim"
)

// Summary holds trace-derived metrics for one run.
type Summary struct {
	// Steps is the trace length; DT the step in seconds.
	Steps int
	DT    float64

	// PeakRequestW is the largest positive power request.
	PeakRequestW float64
	// PeakBatteryW is the largest positive battery terminal power.
	PeakBatteryW float64
	// PeakShavingFrac is 1 − PeakBatteryW/PeakRequestW: how much of the
	// worst-case request the battery never saw (0 for battery-only paths).
	PeakShavingFrac float64
	// BatteryRMSW is the root-mean-square battery power — the I²R-loss and
	// aging proxy.
	BatteryRMSW float64

	// RegenOfferedJ is the integral of negative requests (J, positive
	// number), and RegenToCapJ the part absorbed by the ultracapacitor.
	RegenOfferedJ float64
	RegenToCapJ   float64

	// CapThroughputJ is the total energy moved through the ultracapacitor
	// (|discharge| + |charge|), the bank utilisation measure.
	CapThroughputJ float64
	// SoESwing is max SoE − min SoE over the run.
	SoESwing float64

	// CoolerDutyFrac is the fraction of steps with the cooling system on.
	CoolerDutyFrac float64
	// CoolerEnergyJ integrates the cooling electrical power.
	CoolerEnergyJ float64

	// TempMinK and TempMaxK bound the battery temperature.
	TempMinK, TempMaxK float64
}

// Summarize computes the metrics from a trace sampled every dt seconds.
func Summarize(tr *sim.Trace, dt float64) Summary {
	var s Summary
	if tr == nil || len(tr.Time) == 0 {
		return s
	}
	s.Steps = len(tr.Time)
	s.DT = dt
	s.TempMinK, s.TempMaxK = tr.BatteryTemp[0], tr.BatteryTemp[0]
	minSoE, maxSoE := tr.SoE[0], tr.SoE[0]

	var sumSq float64
	coolSteps := 0
	for i := 0; i < s.Steps; i++ {
		if p := tr.PowerRequest[i]; p > s.PeakRequestW {
			s.PeakRequestW = p
		} else if p < 0 {
			s.RegenOfferedJ += -p * dt
			if cp := tr.CapPower[i]; cp < 0 {
				s.RegenToCapJ += math.Min(-cp, -p) * dt
			}
		}
		bp := tr.BatteryPower[i]
		if bp > s.PeakBatteryW {
			s.PeakBatteryW = bp
		}
		sumSq += bp * bp
		s.CapThroughputJ += math.Abs(tr.CapPower[i]) * dt
		if tr.CoolerPower[i] > 0 {
			coolSteps++
			s.CoolerEnergyJ += tr.CoolerPower[i] * dt
		}
		if t := tr.BatteryTemp[i]; t < s.TempMinK {
			s.TempMinK = t
		} else if t > s.TempMaxK {
			s.TempMaxK = t
		}
		if v := tr.SoE[i]; v < minSoE {
			minSoE = v
		} else if v > maxSoE {
			maxSoE = v
		}
	}
	s.BatteryRMSW = math.Sqrt(sumSq / float64(s.Steps))
	if s.PeakRequestW > 0 {
		s.PeakShavingFrac = 1 - s.PeakBatteryW/s.PeakRequestW
		if s.PeakShavingFrac < 0 {
			s.PeakShavingFrac = 0
		}
	}
	s.CoolerDutyFrac = float64(coolSteps) / float64(s.Steps)
	s.SoESwing = maxSoE - minSoE
	return s
}

// RegenCaptureFrac returns the share of offered regenerative energy the
// ultracapacitor absorbed (the battery or friction brakes took the rest).
func (s Summary) RegenCaptureFrac() float64 {
	if floats.Zero(s.RegenOfferedJ) {
		return 0
	}
	return s.RegenToCapJ / s.RegenOfferedJ
}

// Write renders the summary as a labelled table.
func (s Summary) Write(w io.Writer, label string) {
	fmt.Fprintf(w, "# analysis: %s (%d steps)\n", label, s.Steps)
	fmt.Fprintf(w, "peak request         %10.1f kW\n", s.PeakRequestW/1e3)
	fmt.Fprintf(w, "peak battery power   %10.1f kW  (shaving %.1f %%)\n",
		s.PeakBatteryW/1e3, 100*s.PeakShavingFrac)
	fmt.Fprintf(w, "battery RMS power    %10.1f kW\n", s.BatteryRMSW/1e3)
	fmt.Fprintf(w, "cap throughput       %10.2f MJ  (SoE swing %.2f)\n",
		s.CapThroughputJ/1e6, s.SoESwing)
	fmt.Fprintf(w, "regen capture by cap %10.1f %%\n", 100*s.RegenCaptureFrac())
	fmt.Fprintf(w, "cooler duty          %10.1f %%  (%.2f MJ)\n",
		100*s.CoolerDutyFrac, s.CoolerEnergyJ/1e6)
	fmt.Fprintf(w, "battery temp range   %10.1f – %.1f °C\n",
		s.TempMinK-273.15, s.TempMaxK-273.15)
}
