// Package canon defines the canonical-encoding contract every public run
// specification implements: a stable, self-describing byte encoding that
// is the same no matter which surface produced the spec. The otem-serve
// cache keys, the CLI JSON output and the fleet result digests all derive
// from this one code path, so two specs encode identically exactly when
// they describe the same deterministic computation.
//
// The format is deliberately trivial — a versioned name followed by
// "|key=value" fields in a fixed order — so it stays diffable in logs and
// greppable in cache dumps. It is not meant to be parsed back; the JSON
// schemas in the otem package are the decodable wire formats.
package canon

import "strconv"

// Spec is the canonical-encoding interface shared by RunSpec, DSEConfig,
// LifetimeConfig and FleetSpec. AppendCanonical appends the spec's
// canonical encoding to dst and returns the extended slice, in the
// append-style idiom so hot callers can reuse one buffer.
type Spec interface {
	AppendCanonical(dst []byte) []byte
}

// String renders a spec's canonical encoding as a string — the form used
// for cache keys and digests.
func String(s Spec) string {
	return string(s.AppendCanonical(nil))
}

// Field appends one "|key=" separator pair; the caller appends the value.
func Field(dst []byte, key string) []byte {
	dst = append(dst, '|')
	dst = append(dst, key...)
	return append(dst, '=')
}

// Str appends a string-valued field.
func Str(dst []byte, key, v string) []byte {
	return append(Field(dst, key), v...)
}

// Int appends an integer-valued field.
func Int(dst []byte, key string, v int) []byte {
	return strconv.AppendInt(Field(dst, key), int64(v), 10)
}

// Int64 appends a 64-bit integer field (seeds).
func Int64(dst []byte, key string, v int64) []byte {
	return strconv.AppendInt(Field(dst, key), v, 10)
}

// Float appends a float field in the shortest round-trippable form, so
// the encoding is bit-faithful to the value that parameterised the run.
func Float(dst []byte, key string, v float64) []byte {
	return strconv.AppendFloat(Field(dst, key), v, 'g', -1, 64)
}

// Bool appends a boolean field.
func Bool(dst []byte, key string, v bool) []byte {
	return strconv.AppendBool(Field(dst, key), v)
}

// Floats appends a list-valued field as comma-joined shortest floats.
func Floats(dst []byte, key string, vs []float64) []byte {
	dst = Field(dst, key)
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return dst
}
