// Package mpc provides the model-predictive-control scaffolding of paper
// §III-B: a finite horizon, move blocking, box bounds on the control
// inputs, warm-started re-planning, all layered on the optimize package's
// projected quasi-Newton solver.
//
// The package is deliberately model-agnostic: the caller supplies an
// objective over the blocked decision vector (typically a single-shooting
// rollout of the plant model) and mpc handles the decision-vector geometry.
// The OTEM controller in internal/core builds on this.
package mpc

import (
	"errors"
	"fmt"

	"repro/internal/optimize"
)

// Spec describes the decision-variable geometry of an MPC problem.
type Spec struct {
	// Horizon is the number of prediction steps N (the paper's control
	// window size).
	Horizon int
	// BlockSize is the move-blocking factor: the control inputs are held
	// constant over blocks of this many steps, shrinking the decision
	// vector from N·m to ceil(N/B)·m.
	BlockSize int
	// InputsPerStep is the number m of control inputs per step (OTEM uses
	// two: ultracapacitor bus power and cooling intensity).
	InputsPerStep int
	// Lower and Upper bound each of the m inputs (applied to every block).
	Lower, Upper []float64
	// Options tunes the inner optimizer.
	Options optimize.Options
}

// Validate reports an error for an inconsistent specification.
func (s Spec) Validate() error {
	switch {
	case s.Horizon <= 0:
		return fmt.Errorf("mpc: Horizon = %d, must be > 0", s.Horizon)
	case s.BlockSize <= 0:
		return fmt.Errorf("mpc: BlockSize = %d, must be > 0", s.BlockSize)
	case s.InputsPerStep <= 0:
		return fmt.Errorf("mpc: InputsPerStep = %d, must be > 0", s.InputsPerStep)
	case len(s.Lower) != s.InputsPerStep || len(s.Upper) != s.InputsPerStep:
		return fmt.Errorf("mpc: bounds must have length %d (got %d, %d)",
			s.InputsPerStep, len(s.Lower), len(s.Upper))
	}
	for i := range s.Lower {
		if s.Lower[i] > s.Upper[i] {
			return fmt.Errorf("mpc: input %d bounds inverted: [%g, %g]", i, s.Lower[i], s.Upper[i])
		}
	}
	return nil
}

// Blocks returns the number of decision blocks ceil(Horizon/BlockSize).
func (s Spec) Blocks() int { return (s.Horizon + s.BlockSize - 1) / s.BlockSize }

// Dim returns the decision-vector length Blocks()·InputsPerStep.
func (s Spec) Dim() int { return s.Blocks() * s.InputsPerStep }

// InputAt reads control input i for prediction step k from the blocked
// decision vector z.
func (s Spec) InputAt(z []float64, step, input int) float64 {
	b := step / s.BlockSize
	if b >= s.Blocks() {
		b = s.Blocks() - 1
	}
	return z[b*s.InputsPerStep+input]
}

// Planner carries a warm start between successive plans.
//
// A Planner also owns the solver state — bound vectors, the optimize
// Workspace, and result storage — so a warm-started PlanGrad call performs
// the whole replan without allocating. That makes a Planner single-goroutine
// state; concurrent simulations need one Planner each.
type Planner struct {
	spec Spec
	warm []float64
	// haveWarm records whether warm holds a previous solution.
	haveWarm bool

	// Reusable solver state: the per-block bounds expanded over the full
	// decision vector, the problem shell PlanGrad fills in, the optimizer
	// workspace, the last result, and the Advance pad scratch.
	lower, upper []float64
	prob         optimize.Problem
	ws           optimize.Workspace
	res          optimize.Result
	lastBlock    []float64
}

// NewPlanner validates the spec and returns a planner whose first plan
// starts from the midpoint of the bounds.
func NewPlanner(spec Spec) (*Planner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Planner{spec: spec, warm: make([]float64, spec.Dim())}
	m := spec.InputsPerStep
	p.lower = make([]float64, spec.Dim())
	p.upper = make([]float64, spec.Dim())
	for b := 0; b < spec.Blocks(); b++ {
		copy(p.lower[b*m:], spec.Lower)
		copy(p.upper[b*m:], spec.Upper)
	}
	p.prob = optimize.Problem{
		Dim:   spec.Dim(),
		Lower: p.lower,
		Upper: p.upper,
	}
	p.lastBlock = make([]float64, m)
	p.resetWarm()
	return p, nil
}

// Spec returns the planner's decision geometry.
func (p *Planner) Spec() Spec { return p.spec }

func (p *Planner) resetWarm() {
	m := p.spec.InputsPerStep
	for b := 0; b < p.spec.Blocks(); b++ {
		for i := 0; i < m; i++ {
			lo, hi := p.spec.Lower[i], p.spec.Upper[i]
			p.warm[b*m+i] = (lo + hi) / 2
		}
	}
	p.haveWarm = false
}

// Plan minimises the objective over the blocked decision vector, starting
// from the warm start, and retains the solution for the next call. The
// returned slice and Result alias the planner's internal state — copy them
// if they must survive the next Plan call.
func (p *Planner) Plan(objective func(z []float64) float64) ([]float64, *optimize.Result, error) {
	return p.PlanGrad(objective, nil)
}

// PlanGrad is Plan with an optional analytic gradient (grad writes
// ∂objective/∂z into its second argument); when grad is nil the solver
// falls back to finite differences.
//
//lint:hotpath the warm re-plan runs once per control step; allocflow proves it allocation-free
func (p *Planner) PlanGrad(objective func(z []float64) float64, grad func(z, g []float64)) ([]float64, *optimize.Result, error) {
	if objective == nil {
		return nil, nil, errors.New("mpc: nil objective")
	}
	p.prob.Func = objective
	p.prob.Grad = grad
	res, err := p.ws.Minimize(&p.prob, p.warm, &p.spec.Options)
	p.prob.Func = nil
	p.prob.Grad = nil
	if err != nil {
		return nil, nil, err
	}
	p.res = res
	copy(p.warm, res.X)
	p.haveWarm = true
	return p.warm, &p.res, nil
}

// Advance shifts the warm start forward by the given number of plant steps
// (receding horizon): whole blocks that have been executed are dropped and
// the tail is padded by repeating the last block. Calling it with fewer
// steps than a block leaves the warm start unchanged.
func (p *Planner) Advance(steps int) {
	if !p.haveWarm || steps <= 0 {
		return
	}
	shift := steps / p.spec.BlockSize
	if shift <= 0 {
		return
	}
	m := p.spec.InputsPerStep
	nb := p.spec.Blocks()
	if shift >= nb {
		// Everything executed; keep the last block as a constant guess.
		last := p.lastBlock
		copy(last, p.warm[(nb-1)*m:nb*m])
		for b := 0; b < nb; b++ {
			copy(p.warm[b*m:(b+1)*m], last)
		}
		return
	}
	copy(p.warm, p.warm[shift*m:])
	last := p.warm[(nb-shift-1)*m : (nb-shift)*m]
	for b := nb - shift; b < nb; b++ {
		copy(p.warm[b*m:(b+1)*m], last)
	}
}

// Reset discards the warm start (e.g. after a plant discontinuity).
func (p *Planner) Reset() { p.resetWarm() }
