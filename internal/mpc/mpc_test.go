package mpc

import (
	"math"
	"testing"
)

func spec2() Spec {
	return Spec{
		Horizon:       20,
		BlockSize:     5,
		InputsPerStep: 2,
		Lower:         []float64{-1, 0},
		Upper:         []float64{1, 10},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := spec2().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := spec2()
	bad.Horizon = 0
	if bad.Validate() == nil {
		t.Error("zero horizon accepted")
	}
	bad = spec2()
	bad.BlockSize = -1
	if bad.Validate() == nil {
		t.Error("negative block accepted")
	}
	bad = spec2()
	bad.Lower = []float64{0}
	if bad.Validate() == nil {
		t.Error("bounds length mismatch accepted")
	}
	bad = spec2()
	bad.Lower = []float64{2, 0}
	if bad.Validate() == nil {
		t.Error("inverted bounds accepted")
	}
	bad = spec2()
	bad.InputsPerStep = 0
	if bad.Validate() == nil {
		t.Error("zero inputs accepted")
	}
}

func TestSpecGeometry(t *testing.T) {
	s := spec2()
	if s.Blocks() != 4 {
		t.Errorf("Blocks = %d, want 4", s.Blocks())
	}
	if s.Dim() != 8 {
		t.Errorf("Dim = %d, want 8", s.Dim())
	}
	// Uneven horizon rounds up.
	s.Horizon = 21
	if s.Blocks() != 5 {
		t.Errorf("Blocks(21/5) = %d, want 5", s.Blocks())
	}
}

func TestInputAt(t *testing.T) {
	s := spec2()
	z := []float64{
		10, 11, // block 0
		20, 21, // block 1
		30, 31, // block 2
		40, 41, // block 3
	}
	cases := []struct {
		step, input int
		want        float64
	}{
		{0, 0, 10}, {0, 1, 11},
		{4, 0, 10},  // last step of block 0
		{5, 1, 21},  // first step of block 1
		{19, 0, 40}, // last step
		{25, 1, 41}, // beyond horizon clamps to last block
	}
	for _, tc := range cases {
		if got := s.InputAt(z, tc.step, tc.input); got != tc.want {
			t.Errorf("InputAt(step=%d,input=%d) = %v, want %v", tc.step, tc.input, got, tc.want)
		}
	}
}

func TestPlannerRejectsBadSpec(t *testing.T) {
	bad := spec2()
	bad.Horizon = -1
	if _, err := NewPlanner(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPlannerSolvesSeparableQuadratic(t *testing.T) {
	p, err := NewPlanner(spec2())
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: input0 = 0.5 in every block, input1 = 3.
	obj := func(z []float64) float64 {
		var f float64
		for b := 0; b < 4; b++ {
			d0 := z[2*b] - 0.5
			d1 := z[2*b+1] - 3
			f += d0*d0 + d1*d1
		}
		return f
	}
	z, res, err := p.Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if math.Abs(z[2*b]-0.5) > 1e-4 || math.Abs(z[2*b+1]-3) > 1e-4 {
			t.Errorf("block %d = (%v, %v), want (0.5, 3); status %v", b, z[2*b], z[2*b+1], res.Status)
		}
	}
}

func TestPlannerRespectsBounds(t *testing.T) {
	p, _ := NewPlanner(spec2())
	// Unconstrained optimum outside the box at (5, -5).
	obj := func(z []float64) float64 {
		var f float64
		for i := 0; i < len(z); i += 2 {
			d0 := z[i] - 5
			d1 := z[i+1] + 5
			f += d0*d0 + d1*d1
		}
		return f
	}
	z, _, err := p.Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(z); i += 2 {
		if z[i] > 1+1e-9 || z[i+1] < -1e-9 {
			t.Errorf("bounds violated at %d: (%v, %v)", i, z[i], z[i+1])
		}
	}
}

func TestPlannerWarmStartSpeedsReplan(t *testing.T) {
	p, _ := NewPlanner(spec2())
	obj := func(z []float64) float64 {
		var f float64
		for i := range z {
			f += (z[i] - 0.25) * (z[i] - 0.25)
		}
		return f
	}
	_, first, err := p.Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := p.Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	if second.FuncEvals > first.FuncEvals {
		t.Errorf("warm-started replan used %d evals, cold used %d", second.FuncEvals, first.FuncEvals)
	}
}

func TestPlannerAdvanceShiftsBlocks(t *testing.T) {
	p, _ := NewPlanner(spec2())
	target := []float64{1, 1, -1, 2, 0.5, 3, -0.5, 4}
	obj := func(z []float64) float64 {
		var f float64
		for i := range z {
			f += (z[i] - target[i]) * (z[i] - target[i])
		}
		return f
	}
	z, _, err := p.Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), z...)
	// Advance one full block (5 steps): block1 moves to block0 etc.,
	// last block repeated.
	p.Advance(5)
	if math.Abs(p.warm[0]-before[2]) > 1e-12 || math.Abs(p.warm[1]-before[3]) > 1e-12 {
		t.Errorf("block 0 after Advance = (%v,%v), want old block 1 (%v,%v)",
			p.warm[0], p.warm[1], before[2], before[3])
	}
	if math.Abs(p.warm[6]-before[6]) > 1e-12 || math.Abs(p.warm[7]-before[7]) > 1e-12 {
		t.Errorf("tail should repeat last block")
	}
}

func TestPlannerAdvancePartialBlockNoop(t *testing.T) {
	p, _ := NewPlanner(spec2())
	obj := func(z []float64) float64 {
		var f float64
		for i := range z {
			f += z[i] * z[i]
		}
		return f
	}
	if _, _, err := p.Plan(obj); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), p.warm...)
	p.Advance(3) // less than BlockSize 5
	for i := range before {
		if p.warm[i] != before[i] {
			t.Fatal("partial-block Advance mutated warm start")
		}
	}
}

func TestPlannerAdvanceBeyondHorizon(t *testing.T) {
	p, _ := NewPlanner(spec2())
	target := []float64{0, 0, 0, 0, 0, 0, 0.9, 7}
	obj := func(z []float64) float64 {
		var f float64
		for i := range z {
			f += (z[i] - target[i]) * (z[i] - target[i])
		}
		return f
	}
	if _, _, err := p.Plan(obj); err != nil {
		t.Fatal(err)
	}
	p.Advance(100)
	// Whole plan executed: every block should now equal the old last block.
	for b := 0; b < 4; b++ {
		if math.Abs(p.warm[2*b]-0.9) > 1e-4 || math.Abs(p.warm[2*b+1]-7) > 1e-4 {
			t.Errorf("block %d = (%v,%v), want (0.9,7)", b, p.warm[2*b], p.warm[2*b+1])
		}
	}
}

func TestPlannerReset(t *testing.T) {
	p, _ := NewPlanner(spec2())
	obj := func(z []float64) float64 {
		var f float64
		for i := range z {
			f += (z[i] - 1) * (z[i] - 1)
		}
		return f
	}
	if _, _, err := p.Plan(obj); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	// Midpoint of bounds: (0, 5).
	if p.warm[0] != 0 || p.warm[1] != 5 {
		t.Errorf("Reset warm = (%v, %v), want (0, 5)", p.warm[0], p.warm[1])
	}
	// Advance after reset must be a no-op (no plan to shift).
	p.Advance(10)
	if p.warm[0] != 0 || p.warm[1] != 5 {
		t.Error("Advance after Reset mutated the default warm start")
	}
}

func TestPlanNilObjective(t *testing.T) {
	p, _ := NewPlanner(spec2())
	if _, _, err := p.Plan(nil); err == nil {
		t.Error("nil objective accepted")
	}
}
