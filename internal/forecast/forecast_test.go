package forecast

import (
	"math"
	"strings"
	"testing"

	"repro/internal/drivecycle"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func us06Series(t testing.TB) []float64 {
	t.Helper()
	return vehicle.MidSizeEV().PowerSeries(drivecycle.US06())
}

func TestOracleIsExact(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6}
	o := NewOracle(series)
	buf := make([]float64, 3)
	for t0 := 0; t0 < len(series); t0++ {
		o.Predict(buf, series[t0])
		for k := 0; k < 3; k++ {
			want := 0.0
			if t0+k < len(series) {
				want = series[t0+k]
			}
			if buf[k] != want {
				t.Fatalf("t=%d k=%d: got %v, want %v", t0, k, buf[k], want)
			}
		}
		o.Observe(series[t0])
	}
}

func TestOracleRMSEZero(t *testing.T) {
	series := us06Series(t)
	if rmse := RMSE(NewOracle(series), series, 40); rmse != 0 {
		t.Errorf("oracle RMSE = %v, want 0", rmse)
	}
}

func TestPersistence(t *testing.T) {
	var p Persistence
	buf := make([]float64, 4)
	p.Predict(buf, 7)
	for _, v := range buf {
		if v != 7 {
			t.Fatalf("persistence = %v", buf)
		}
	}
}

func TestDecayRelaxesTowardMean(t *testing.T) {
	d := NewDecay(5)
	// Establish a mean near zero.
	for i := 0; i < 1000; i++ {
		d.Observe(0)
	}
	buf := make([]float64, 30)
	d.Predict(buf, 100)
	if buf[0] != 100 {
		t.Errorf("present not exact: %v", buf[0])
	}
	if buf[1] >= 100 || buf[1] <= 0 {
		t.Errorf("first estimate %v not between mean and present", buf[1])
	}
	// Far horizon approaches the mean.
	if math.Abs(buf[29]) > 5 {
		t.Errorf("far estimate %v should approach mean 0", buf[29])
	}
	// Monotone decay toward the mean.
	for k := 2; k < len(buf); k++ {
		if buf[k] > buf[k-1]+1e-9 {
			t.Fatalf("decay not monotone at %d: %v > %v", k, buf[k], buf[k-1])
		}
	}
}

func TestTrainMarkovValidation(t *testing.T) {
	if _, err := TrainMarkov(nil, 8); err == nil {
		t.Error("no data accepted")
	}
	if _, err := TrainMarkov([][]float64{{1, 2}}, 1); err == nil {
		t.Error("1 bin accepted")
	}
	// Constant series must not divide by zero.
	m, err := TrainMarkov([][]float64{{5, 5, 5, 5}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 5)
	m.Predict(buf, 5)
	for _, v := range buf[1:] {
		if math.IsNaN(v) {
			t.Fatal("NaN prediction from constant training data")
		}
	}
}

func TestMarkovDistributionConserved(t *testing.T) {
	series := us06Series(t)
	m, err := TrainMarkov([][]float64{series}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Rows are stochastic.
	for i, row := range m.trans {
		var sum float64
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative transition prob at row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Predictions stay inside the training range.
	buf := make([]float64, 40)
	m.Predict(buf, 50e3)
	lo, hi := m.levels[0], m.levels[len(m.levels)-1]
	for k := 1; k < len(buf); k++ {
		if buf[k] < lo-1 || buf[k] > hi+1 {
			t.Fatalf("prediction %v outside level range [%v, %v]", buf[k], lo, hi)
		}
	}
}

func TestPredictorAccuracyOrdering(t *testing.T) {
	// On US06, the trained Markov predictor and the decay predictor should
	// beat raw persistence at a 40-step window; the oracle is exact.
	series := us06Series(t)
	train := vehicle.MidSizeEV().PowerSeries(drivecycle.LA92())
	m, err := TrainMarkov([][]float64{train, series}, 16)
	if err != nil {
		t.Fatal(err)
	}
	persist := RMSE(Persistence{}, series, 40)
	decay := RMSE(NewDecay(8), series, 40)
	markov := RMSE(m, series, 40)
	if decay >= persist {
		t.Errorf("decay RMSE %v should beat persistence %v", decay, persist)
	}
	if markov >= persist {
		t.Errorf("markov RMSE %v should beat persistence %v", markov, persist)
	}
}

func TestRMSEDegenerate(t *testing.T) {
	if RMSE(Persistence{}, nil, 40) != 0 {
		t.Error("empty series RMSE should be 0")
	}
	if RMSE(Persistence{}, []float64{1, 2}, 1) != 0 {
		t.Error("window 1 RMSE should be 0")
	}
}

type recordingController struct {
	got [][]float64
}

func (r *recordingController) Name() string { return "rec" }
func (r *recordingController) Decide(_ *sim.Plant, forecast []float64) sim.Action {
	cp := append([]float64(nil), forecast...)
	r.got = append(r.got, cp)
	return sim.Action{Arch: sim.ArchBatteryDirect}
}

func TestWrapReplacesFutureKeepsPresent(t *testing.T) {
	inner := &recordingController{}
	w := Wrap(inner, Persistence{})
	if !strings.Contains(w.Name(), "persistence") {
		t.Errorf("Name = %q", w.Name())
	}
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	requests := []float64{10, 20, 30}
	if _, err := sim.Run(plant, w, requests, sim.Config{Horizon: 3}); err != nil {
		t.Fatal(err)
	}
	if len(inner.got) != 3 {
		t.Fatalf("inner called %d times", len(inner.got))
	}
	// Step 1: oracle would give [20, 30, 0]; persistence gives [20, 20, 20].
	want := []float64{20, 20, 20}
	for i, v := range want {
		if inner.got[1][i] != v {
			t.Fatalf("wrapped forecast = %v, want %v", inner.got[1], want)
		}
	}
}
