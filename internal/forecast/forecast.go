// Package forecast provides EV power-request predictors. The paper assumes
// the estimated future requests P̂_e are available to the controller
// ("predicted by modeling the power train and driving route [3]"); this
// package supplies that component for deployments without an oracle:
//
//   - Oracle: the exact future (what the paper's evaluation uses).
//   - Persistence: hold the last measured request (the weakest baseline).
//   - Decay: persistence decaying toward a running mean — a driver
//     releasing the pedal more often than not.
//   - Markov: a quantised power-level Markov chain trained on historical
//     cycles, predicting the expected trajectory.
//
// All predictors implement Predictor and can wrap any sim.Controller via
// WithPredictor, so the experiment suite can measure how much of OTEM's
// advantage survives realistic prediction error.
package forecast

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core/floats"
	"repro/internal/sim"
)

// Predictor produces the estimated request window used by a predictive
// controller. Observe is called once per step with the measured present
// request; Predict fills dst[1:] with estimates for the following steps
// (dst[0] is always the exact present request, which is measurable).
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Observe feeds the measured request of the current step.
	Observe(present float64)
	// Predict writes estimates into dst: dst[0] the present (already
	// measured) request, dst[1:] the future estimates.
	Predict(dst []float64, present float64)
}

// Oracle passes the simulator's exact future through — the paper's
// assumption. It needs the full request series and a cursor.
type Oracle struct {
	series []float64
	cursor int
}

// NewOracle wraps the exact request series.
func NewOracle(series []float64) *Oracle { return &Oracle{series: series} }

// Name implements Predictor.
func (*Oracle) Name() string { return "oracle" }

// Observe implements Predictor (advances the cursor).
func (o *Oracle) Observe(float64) { o.cursor++ }

// Predict implements Predictor.
func (o *Oracle) Predict(dst []float64, present float64) {
	dst[0] = present
	for k := 1; k < len(dst); k++ {
		if i := o.cursor + k; i < len(o.series) {
			dst[k] = o.series[i]
		} else {
			dst[k] = 0
		}
	}
}

// Persistence predicts that the present request continues unchanged.
type Persistence struct{}

// Name implements Predictor.
func (Persistence) Name() string { return "persistence" }

// Observe implements Predictor.
func (Persistence) Observe(float64) {}

// Predict implements Predictor.
func (Persistence) Predict(dst []float64, present float64) {
	for k := range dst {
		dst[k] = present
	}
}

// Decay predicts exponential relaxation from the present request toward a
// running mean of the observed demand.
type Decay struct {
	// Tau is the relaxation time constant in steps.
	Tau float64
	// MeanTau is the running-mean horizon in steps.
	MeanTau float64

	mean    float64
	haveObs bool
}

// NewDecay returns a decay predictor with the given relaxation constant.
func NewDecay(tau float64) *Decay { return &Decay{Tau: tau, MeanTau: 300} }

// Name implements Predictor.
func (d *Decay) Name() string { return "decay" }

// Observe implements Predictor.
func (d *Decay) Observe(present float64) {
	if !d.haveObs {
		d.mean = present
		d.haveObs = true
		return
	}
	alpha := 1.0 / d.MeanTau
	d.mean += alpha * (present - d.mean)
}

// Predict implements Predictor.
func (d *Decay) Predict(dst []float64, present float64) {
	dst[0] = present
	for k := 1; k < len(dst); k++ {
		w := math.Exp(-float64(k) / d.Tau)
		dst[k] = w*present + (1-w)*d.mean
	}
}

// Markov is a quantised-power Markov-chain predictor: requests are binned,
// a transition matrix is estimated from training series, and the forecast
// is the expected power level propagated through the chain.
type Markov struct {
	levels []float64   // bin centres, watts
	trans  [][]float64 // row-stochastic transition matrix
	binFn  func(float64) int
	// scratch for distribution propagation
	dist, next []float64
}

// TrainMarkov estimates a predictor from one or more historical request
// series with the given number of quantisation bins.
func TrainMarkov(series [][]float64, bins int) (*Markov, error) {
	if bins < 2 {
		return nil, fmt.Errorf("forecast: bins = %d, need >= 2", bins)
	}
	var lo, hi float64
	seen := false
	for _, s := range series {
		for _, p := range s {
			if !seen {
				lo, hi, seen = p, p, true
				continue
			}
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
	}
	if !seen {
		return nil, errors.New("forecast: no training data")
	}
	if floats.Eq(hi, lo) {
		hi = lo + 1
	}
	m := &Markov{
		levels: make([]float64, bins),
		trans:  make([][]float64, bins),
		dist:   make([]float64, bins),
		next:   make([]float64, bins),
	}
	width := (hi - lo) / float64(bins)
	for i := range m.levels {
		m.levels[i] = lo + (float64(i)+0.5)*width
		m.trans[i] = make([]float64, bins)
	}
	bin := func(p float64) int {
		b := int((p - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	counts := make([][]float64, bins)
	for i := range counts {
		counts[i] = make([]float64, bins)
	}
	for _, s := range series {
		for t := 1; t < len(s); t++ {
			counts[bin(s[t-1])][bin(s[t])]++
		}
	}
	for i := range counts {
		var total float64
		for _, c := range counts[i] {
			total += c
		}
		if floats.Zero(total) {
			// Unvisited bin: self-loop.
			m.trans[i][i] = 1
			continue
		}
		for j, c := range counts[i] {
			m.trans[i][j] = c / total
		}
	}
	m.binFn = bin
	return m, nil
}

// Name implements Predictor.
func (m *Markov) Name() string { return "markov" }

// Observe implements Predictor (the chain is memoryless beyond the present
// level, so observation is a no-op).
func (m *Markov) Observe(float64) {}

// Predict implements Predictor: expected power at each future step from
// the propagated state distribution.
func (m *Markov) Predict(dst []float64, present float64) {
	dst[0] = present
	for i := range m.dist {
		m.dist[i] = 0
	}
	m.dist[m.binFn(present)] = 1
	for k := 1; k < len(dst); k++ {
		for j := range m.next {
			m.next[j] = 0
		}
		for i, pi := range m.dist {
			//lint:ignore floatcompare sparsity skip: distribution entries are exactly 0 unless assigned; an epsilon would drop real small probabilities
			if pi == 0 {
				continue
			}
			row := m.trans[i]
			for j, pij := range row {
				//lint:ignore floatcompare sparsity skip: transition entries are exactly 0 unless trained; an epsilon would drop real small probabilities
				if pij != 0 {
					m.next[j] += pi * pij
				}
			}
		}
		m.dist, m.next = m.next, m.dist
		var exp float64
		for i, pi := range m.dist {
			exp += pi * m.levels[i]
		}
		dst[k] = exp
	}
}

// WithPredictor wraps a controller so that it sees predictor output instead
// of the simulator's oracle forecast. The present request (forecast[0]) is
// always passed through exactly.
type WithPredictor struct {
	// Inner is the wrapped controller.
	Inner sim.Controller
	// P supplies the estimates.
	P Predictor

	buf []float64
}

// Wrap builds the wrapper.
func Wrap(inner sim.Controller, p Predictor) *WithPredictor {
	return &WithPredictor{Inner: inner, P: p}
}

// Name implements sim.Controller.
func (w *WithPredictor) Name() string {
	return fmt.Sprintf("%s[%s]", w.Inner.Name(), w.P.Name())
}

// Decide implements sim.Controller. The engine's forecast window is
// treated as read-only: the predictor writes its estimates into an owned
// buffer, so the wrapper is safe to run on the batched rollout where the
// engine shares one window array across all lanes.
func (w *WithPredictor) Decide(p *sim.Plant, forecast []float64) sim.Action {
	present := forecast[0]
	if cap(w.buf) < len(forecast) {
		w.buf = make([]float64, len(forecast))
	}
	est := w.buf[:len(forecast)]
	w.P.Predict(est, present)
	act := w.Inner.Decide(p, est)
	w.P.Observe(present)
	return act
}

// ForecastDepth implements sim.ForecastReader: only the measured present
// request forecast[0] is read — the future entries are replaced by the
// predictor's own estimates — so the engine need not fill the rest.
func (w *WithPredictor) ForecastDepth() int { return 1 }

var _ sim.ForecastReader = (*WithPredictor)(nil)

// RMSE measures a predictor's error against a series at the given window
// length: the root-mean-square error over all (step, lead) pairs, watts.
func RMSE(p Predictor, series []float64, window int) float64 {
	if window < 2 || len(series) == 0 {
		return 0
	}
	buf := make([]float64, window)
	var sum float64
	var n int
	for t := 0; t < len(series); t++ {
		p.Predict(buf, series[t])
		for k := 1; k < window; k++ {
			var truth float64
			if t+k < len(series) {
				truth = series[t+k]
			}
			d := buf[k] - truth
			sum += d * d
			n++
		}
		p.Observe(series[t])
	}
	return math.Sqrt(sum / float64(n))
}
