// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV): Fig. 1 (thermal case study), Fig. 6 (temperature
// traces), Fig. 7 (TEB preparation), Fig. 8 (battery lifetime), Fig. 9
// (power consumption) and Table I (ultracapacitor sizing). Each experiment
// returns a structured result that the CLI tools and the benchmark harness
// render; absolute numbers differ from the paper (our substrate is a
// synthetic simulator — see DESIGN.md), but the qualitative shape is
// asserted by tests.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/core/floats"
	"repro/internal/drivecycle"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// Methodology is the typed methodology name shared with the policy package
// and the public facade.
type Methodology = policy.Methodology

// Methodology names in canonical presentation order.
const (
	MethodParallel = policy.MethodologyParallel
	MethodCooling  = policy.MethodologyCooling
	MethodDual     = policy.MethodologyDual
	MethodOTEM     = policy.MethodologyOTEM
)

// Methods lists the four compared methodologies in presentation order.
func Methods() []Methodology {
	return []Methodology{MethodParallel, MethodCooling, MethodDual, MethodOTEM}
}

// MethodNames lists the methodologies as plain strings, for flag help texts
// and joins.
func MethodNames() []string {
	ms := Methods()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	return out
}

// newController builds a fresh controller for a methodology. Controllers
// are stateful, so each run needs its own.
func newController(method Methodology) (sim.Controller, error) {
	if method == MethodOTEM {
		return core.New(core.DefaultConfig())
	}
	return policy.ByMethodology(method)
}

// RunSpec describes one simulation run of the experiment suite.
type RunSpec struct {
	// Method is one of the Methods names.
	Method Methodology
	// Cycle is a standard drive-cycle name (drivecycle.Names).
	Cycle string
	// Repeats plays the cycle back to back (default 1).
	Repeats int
	// UltracapF is the bank size in farads (default 25000).
	UltracapF float64
	// Trace enables per-step recording.
	Trace bool
}

// AppendCanonical implements the canonical-encoding contract (see package
// canon): a stable rendering of every outcome-determining field, after
// defaulting — the serve result cache keys on it.
func (s RunSpec) AppendCanonical(dst []byte) []byte {
	if s.Repeats < 1 {
		s.Repeats = 1
	}
	if floats.Zero(s.UltracapF) {
		s.UltracapF = 25000
	}
	dst = append(dst, "otem.run"...)
	dst = canon.Str(dst, "m", string(s.Method))
	dst = canon.Str(dst, "c", s.Cycle)
	dst = canon.Int(dst, "r", s.Repeats)
	dst = canon.Float(dst, "u", s.UltracapF)
	dst = canon.Bool(dst, "t", s.Trace)
	return dst
}

// Run executes one specification on a fresh default plant and vehicle.
func Run(spec RunSpec) (sim.Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cooperative cancellation, for batch engines and
// interruptible CLIs: canceling ctx abandons the simulation mid-route with
// an error matching runner.ErrCanceled.
func RunContext(ctx context.Context, spec RunSpec) (sim.Result, error) {
	if spec.Repeats < 1 {
		spec.Repeats = 1
	}
	if floats.Zero(spec.UltracapF) {
		spec.UltracapF = 25000
	}
	cycle, err := drivecycle.ByName(spec.Cycle)
	if err != nil {
		return sim.Result{}, err
	}
	requests := vehicle.MidSizeEV().PowerSeries(cycle.Repeat(spec.Repeats))

	plant, err := sim.NewPlant(sim.PlantConfig{UltracapF: spec.UltracapF})
	if err != nil {
		return sim.Result{}, err
	}
	ctrl, err := newController(spec.Method)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunContext(ctx, plant, ctrl, requests, sim.Config{
		RecordTrace: spec.Trace,
		Horizon:     core.DefaultConfig().Horizon,
	})
}

// toCelsius converts a kelvin series for charting.
func toCelsius(k []float64) []float64 {
	out := make([]float64, len(k))
	for i, v := range k {
		out[i] = units.KToC(v)
	}
	return out
}

// writeTempSeries renders a downsampled temperature series as rows of
// "t  temp°C" for terminal display.
func writeTempSeries(w io.Writer, label string, tr *sim.Trace, every int) {
	fmt.Fprintf(w, "# %s\n", label)
	for i := 0; i < len(tr.Time); i += every {
		fmt.Fprintf(w, "%6.0f s  %6.2f °C\n", tr.Time[i], units.KToC(tr.BatteryTemp[i]))
	}
}
