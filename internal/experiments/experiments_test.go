package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestMethodsAndControllers(t *testing.T) {
	names := Methods()
	if len(names) != 4 {
		t.Fatalf("Methods() = %v", names)
	}
	for _, m := range names {
		c, err := newController(m)
		if err != nil {
			t.Errorf("newController(%q): %v", m, err)
		}
		if c == nil {
			t.Errorf("newController(%q) returned nil", m)
		}
	}
	if _, err := newController("nope"); err == nil {
		t.Error("unknown methodology accepted")
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(RunSpec{Method: MethodParallel, Cycle: "NYCC"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.QlossPct <= 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.Trace != nil {
		t.Error("trace recorded without request")
	}
}

func TestRunUnknownCycle(t *testing.T) {
	if _, err := Run(RunSpec{Method: MethodParallel, Cycle: "MOON"}); err == nil {
		t.Error("unknown cycle accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("MPC-free but multi-run; skipped in -short")
	}
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("Fig1 sizes: %v", r.SizesF)
	}
	// Paper Fig. 1: the small bank violates the safe threshold, the large
	// one holds; temperature decreases monotonically with size.
	small, large := r.Results[0], r.Results[len(r.Results)-1]
	if small.ThermalViolationSec == 0 {
		t.Error("5 kF bank should violate the 40 °C threshold")
	}
	if large.ThermalViolationSec != 0 {
		t.Errorf("20 kF bank should hold the threshold, violated %v s", large.ThermalViolationSec)
	}
	for i := 1; i < len(r.Results); i++ {
		if r.Results[i].MaxBatteryTemp >= r.Results[i-1].MaxBatteryTemp {
			t.Errorf("peak temp not decreasing with size: %v then %v",
				r.Results[i-1].MaxBatteryTemp, r.Results[i].MaxBatteryTemp)
		}
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "Fig. 1") {
		t.Error("Write output malformed")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MPC controller; skipped in -short")
	}
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	otem, ok := r.ResultFor(MethodOTEM)
	if !ok {
		t.Fatal("OTEM missing from Fig6")
	}
	parallel, _ := r.ResultFor(MethodParallel)
	dual, _ := r.ResultFor(MethodDual)
	// Paper Fig. 6: OTEM keeps the battery cooler than the unmanaged and
	// dual architectures and inside the safe zone.
	if otem.MaxBatteryTemp >= dual.MaxBatteryTemp {
		t.Errorf("OTEM peak %v should be below dual %v", otem.MaxBatteryTemp, dual.MaxBatteryTemp)
	}
	if otem.MaxBatteryTemp >= parallel.MaxBatteryTemp {
		t.Errorf("OTEM peak %v should be below parallel %v", otem.MaxBatteryTemp, parallel.MaxBatteryTemp)
	}
	if otem.ThermalViolationSec != 0 {
		t.Errorf("OTEM violated the safe zone for %v s", otem.ThermalViolationSec)
	}
	if _, ok := r.ResultFor("nope"); ok {
		t.Error("ResultFor accepted unknown name")
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "OTEM") {
		t.Error("Write output malformed")
	}
}

func TestFig7TEBSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MPC controller; skipped in -short")
	}
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.PrechargeEvents == 0 {
		t.Error("no TEB pre-charge events detected — Fig. 7 signature missing")
	}
	if r.Result.ThermalViolationSec > 0 {
		t.Error("OTEM violated the safe zone in the Fig. 7 run")
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "pre-charge events") {
		t.Error("Write output malformed")
	}
}

func TestCountPrechargeEvents(t *testing.T) {
	// Synthetic trace: SoE rises from 0.5 to 0.8 before a burst at i=10.
	tr := &traceBuilder{}
	for i := 0; i < 10; i++ {
		tr.add(1e3, 0.5+0.03*float64(i))
	}
	for i := 0; i < 5; i++ {
		tr.add(60e3, 0.8-0.1*float64(i))
	}
	if got := countPrechargeEvents(tr.trace(), 50e3, 10); got != 1 {
		t.Errorf("events = %d, want 1", got)
	}
	// No pre-charge: flat SoE.
	tr2 := &traceBuilder{}
	for i := 0; i < 10; i++ {
		tr2.add(1e3, 0.5)
	}
	tr2.add(60e3, 0.5)
	if got := countPrechargeEvents(tr2.trace(), 50e3, 10); got != 0 {
		t.Errorf("events = %d, want 0", got)
	}
}

func TestSweepAndHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	sweep, err := Sweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 6 || len(sweep.Results[0]) != 4 {
		t.Fatalf("sweep shape %dx%d", len(sweep.Results), len(sweep.Results[0]))
	}
	f8 := Fig8(sweep)
	// Paper headline: OTEM reduces capacity loss on average across cycles.
	if red := f8.OTEMAvgReductionPct(); red <= 5 {
		t.Errorf("OTEM average reduction = %.1f %%, want clearly positive (paper 16.38 %%)", red)
	}
	// OTEM must improve on parallel on the aggressive cycles.
	for i, cyc := range f8.Cycles {
		if cyc == "US06" || cyc == "LA92" {
			o := f8.methodIndex(MethodOTEM)
			if r := f8.Ratio(i, o); r >= 1 {
				t.Errorf("OTEM ratio on %s = %v, want < 1", cyc, r)
			}
		}
	}
	f9 := Fig9(sweep)
	if sav := f9.OTEMSavingVsCoolingPct(); sav <= 0 {
		t.Errorf("OTEM power saving vs cooling = %.1f %%, want positive (paper 12.1 %%)", sav)
	}
	// Cooling must be the most power-hungry methodology wherever its cooler
	// actually engaged (on the mildest cycles the thermostat may never
	// trip, leaving it equivalent to battery-only).
	c := sweep.methodIndex(MethodCooling)
	p := sweep.methodIndex(MethodParallel)
	for i, cyc := range sweep.Cycles {
		res := sweep.Results[i][c]
		if res.CoolingEnergyJ < 0.01*res.HEESEnergyJ {
			continue
		}
		if f9.AvgPower(i, c) <= f9.AvgPower(i, p) {
			t.Errorf("%s: cooling %v not above parallel %v", cyc, f9.AvgPower(i, c), f9.AvgPower(i, p))
		}
	}
	var sb strings.Builder
	f8.Write(&sb)
	f9.Write(&sb)
	if !strings.Contains(sb.String(), "paper: 16.38") || !strings.Contains(sb.String(), "paper: 12.1") {
		t.Error("headline annotations missing")
	}
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("12 simulations incl. MPC; skipped in -short")
	}
	r, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.SizesF) - 1
	// Normalisation: parallel at 25 kF ≡ 100 %.
	if got := r.LossPct(last, 0); got != 100 {
		t.Errorf("parallel@25kF = %v %%, want 100", got)
	}
	// Parallel loss grows as the bank shrinks (paper: 175 % at 5 kF).
	if r.LossPct(0, 0) <= r.LossPct(last, 0) {
		t.Errorf("parallel loss should grow with smaller banks: %v vs %v",
			r.LossPct(0, 0), r.LossPct(last, 0))
	}
	// OTEM beats dual beats parallel at 25 kF.
	if !(r.LossPct(last, 2) < r.LossPct(last, 1) && r.LossPct(last, 1) < 100) {
		t.Errorf("25 kF ordering broken: OTEM %v, dual %v", r.LossPct(last, 2), r.LossPct(last, 1))
	}
	// Paper's conclusion: OTEM is nearly insensitive to the bank size —
	// the 5 kF → 25 kF spread stays within a handful of points of loss.
	spread := r.LossPct(0, 2) - r.LossPct(last, 2)
	if spread < 0 {
		t.Errorf("OTEM loss should not improve when shrinking the bank (spread %v)", spread)
	}
	if spread > 15 {
		t.Errorf("OTEM spread across sizes = %.1f points, want small (paper ≈6)", spread)
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("Write output malformed")
	}
}

// traceBuilder assembles minimal traces for unit tests.
type traceBuilder struct {
	power, soe []float64
}

func (b *traceBuilder) add(p, soe float64) {
	b.power = append(b.power, p)
	b.soe = append(b.soe, soe)
}

func (b *traceBuilder) trace() *sim.Trace {
	return &sim.Trace{PowerRequest: b.power, SoE: b.soe}
}

func TestWriteTempSeriesSmoke(t *testing.T) {
	res, err := Run(RunSpec{Method: MethodParallel, Cycle: "NYCC", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	writeTempSeries(&sb, "x", res.Trace, 120)
	if !strings.Contains(sb.String(), "°C") {
		t.Error("temperature series missing")
	}
	_ = units.ZeroCelsius
}
