package experiments

import (
	"fmt"
	"io"

	"repro/internal/chart"
	"repro/internal/sim"
	"repro/internal/units"
)

// Fig1Result reproduces the paper's motivational case study (Fig. 1):
// battery temperature under the dual architecture's thermal management for
// several ultracapacitor sizes on US06. Small banks deplete before the
// battery is cooled, so the safe threshold is violated; large banks hold.
type Fig1Result struct {
	// SizesF are the ultracapacitor sizes in farads.
	SizesF []float64
	// Results holds the per-size run summaries, aligned with SizesF.
	Results []sim.Result
	// SafeTempK is the C1 threshold for reference.
	SafeTempK float64
}

// Fig1 runs the case study: the dual thermal-management policy on US06 ×3
// with 5 kF, 10 kF and 20 kF banks (the paper's Fig. 1 sizes). At this
// route length the small banks deplete and cross the 40 °C threshold while
// the 20 kF bank holds below it — the paper's headline observation.
func Fig1() (*Fig1Result, error) {
	out := &Fig1Result{
		SizesF:    []float64{5000, 10000, 20000},
		SafeTempK: units.CToK(40),
	}
	for _, size := range out.SizesF {
		res, err := Run(RunSpec{
			Method:    MethodDual,
			Cycle:     "US06",
			Repeats:   3,
			UltracapF: size,
			Trace:     true,
		})
		if err != nil {
			return nil, fmt.Errorf("fig1 size %.0f F: %w", size, err)
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// Write renders the figure as a table of peak temperatures and violation
// times plus downsampled temperature series.
func (r *Fig1Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1 — Battery temperature, dual thermal management, US06 ×3")
	fmt.Fprintf(w, "%-10s %12s %16s\n", "Size (F)", "Max T (°C)", "Violation (s)")
	for i, size := range r.SizesF {
		fmt.Fprintf(w, "%-10.0f %12.2f %16.0f\n",
			size, units.KToC(r.Results[i].MaxBatteryTemp), r.Results[i].ThermalViolationSec)
	}
	fmt.Fprintln(w)
	c := chart.New("battery temperature (°C) vs time — dual thermal management")
	c.YLabel = "°C"
	c.XLabel = "s"
	c.WithHLine(units.KToC(r.SafeTempK))
	for i, size := range r.SizesF {
		c.XMax = r.Results[i].Trace.Time[len(r.Results[i].Trace.Time)-1]
		c.Add(fmt.Sprintf("%.0fF", size), toCelsius(r.Results[i].Trace.BatteryTemp))
	}
	c.Render(w)
}
