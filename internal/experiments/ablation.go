package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/battery"
	"repro/internal/bms"
	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/forecast"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// This file implements the ablation studies DESIGN.md lists as extensions
// beyond the paper: MPC horizon sweeps, cost-weight ablations and
// sensitivity to imperfect power-request forecasts (the paper assumes the
// estimated P_e is exact; a deployed OTEM would not have that luxury).

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	// Label names the configuration.
	Label string
	// Result is the run summary.
	Result sim.Result
}

// AblationResult is a labelled list of runs on a common workload.
type AblationResult struct {
	// Title describes the study.
	Title string
	// Rows holds the per-configuration results.
	Rows []AblationRow
}

// Write renders the ablation as a table.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	fmt.Fprintf(w, "%-24s %14s %12s %14s %12s\n",
		"configuration", "loss (%)", "avg P (W)", "violation (s)", "final SoE")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %14.6f %12.0f %14.0f %12.3f\n",
			row.Label, row.Result.QlossPct, row.Result.AvgPowerW,
			row.Result.ThermalViolationSec, row.Result.FinalSoE)
	}
}

// ablationWorkload is the common route for the studies: US06 ×3.
func ablationWorkload() []float64 {
	return vehicle.MidSizeEV().PowerSeries(mustCycle("US06").Repeat(3))
}

func mustCycle(name string) *drivecycle.Cycle {
	c, err := drivecycle.ByName(name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return c
}

func runOTEMConfig(ctx context.Context, label string, cfg core.Config, requests []float64, wrap func(sim.Controller) sim.Controller) (AblationRow, error) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		return AblationRow{}, err
	}
	var ctrl sim.Controller
	ctrl, err = core.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	if wrap != nil {
		ctrl = wrap(ctrl)
	}
	res, err := sim.RunContext(ctx, plant, ctrl, requests, sim.Config{Horizon: cfg.Horizon})
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s: %w", label, err)
	}
	return AblationRow{Label: label, Result: res}, nil
}

// runStudy evaluates the variants of one ablation study on the batch
// runner; the rows keep the declared variant order regardless of
// completion order.
func runStudy(ctx context.Context, pool *runner.Pool, title string, n int, variant func(ctx context.Context, i int) (AblationRow, error)) (*AblationResult, error) {
	rows, err := runner.Map(ctx, pool, n, variant)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Title: title, Rows: rows}, nil
}

// AblationHorizon sweeps the MPC control-window size (paper Alg. 1 line 4):
// too short a window cannot prepare TEB; longer windows cost compute for
// diminishing returns.
func AblationHorizon() (*AblationResult, error) {
	return AblationHorizonContext(context.Background(), nil)
}

// AblationHorizonContext is AblationHorizon on the batch runner.
func AblationHorizonContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	horizons := []int{8, 16, 40, 80}
	return runStudy(ctx, pool, "Ablation — MPC horizon (US06 ×3, 25 kF)", len(horizons),
		func(ctx context.Context, i int) (AblationRow, error) {
			h := horizons[i]
			cfg := core.DefaultConfig()
			cfg.Horizon = h
			if cfg.BlockSize > h {
				cfg.BlockSize = h
			}
			return runOTEMConfig(ctx, fmt.Sprintf("horizon=%ds", h), cfg, requests, nil)
		})
}

// AblationWeights disables each Eq. 19 cost term in turn, showing what each
// contributes to the joint optimisation.
func AblationWeights() (*AblationResult, error) {
	return AblationWeightsContext(context.Background(), nil)
}

// AblationWeightsContext is AblationWeights on the batch runner.
func AblationWeightsContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"full objective", func(*core.Config) {}},
		{"w1=0 (free cooling)", func(c *core.Config) { c.W1 = 0 }},
		{"w2=0 (no aging term)", func(c *core.Config) { c.W2 = 0 }},
		{"w3=0 (free energy)", func(c *core.Config) { c.W3 = 0 }},
		{"no TEB value", func(c *core.Config) { c.TEBWeight = 0 }},
		{"no temp pressure", func(c *core.Config) { c.TempPressureWeight = 0 }},
	}
	return runStudy(ctx, pool, "Ablation — Eq. 19 cost terms (US06 ×3, 25 kF)", len(variants),
		func(ctx context.Context, i int) (AblationRow, error) {
			cfg := core.DefaultConfig()
			variants[i].mut(&cfg)
			return runOTEMConfig(ctx, variants[i].label, cfg, requests, nil)
		})
}

// NoisyForecast wraps a controller and corrupts the future entries of the
// forecast with multiplicative Gaussian noise before delegating, leaving
// the current step exact (the present request is measurable; only the
// prediction is uncertain). It models an imperfect route predictor.
type NoisyForecast struct {
	// Inner is the wrapped controller.
	Inner sim.Controller
	// Sigma is the relative noise level (e.g. 0.2 = ±20 %).
	Sigma float64

	rng *rand.Rand
	buf []float64
}

// NewNoisyForecast wraps inner with deterministic (seeded) forecast noise.
func NewNoisyForecast(inner sim.Controller, sigma float64, seed int64) *NoisyForecast {
	return &NoisyForecast{Inner: inner, Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Name implements sim.Controller.
func (n *NoisyForecast) Name() string {
	return fmt.Sprintf("%s+noise(%.0f%%)", n.Inner.Name(), n.Sigma*100)
}

// Decide implements sim.Controller.
func (n *NoisyForecast) Decide(p *sim.Plant, forecast []float64) sim.Action {
	if cap(n.buf) < len(forecast) {
		n.buf = make([]float64, len(forecast))
	}
	noisy := n.buf[:len(forecast)]
	copy(noisy, forecast)
	for k := 1; k < len(noisy); k++ {
		noisy[k] *= 1 + n.Sigma*n.rng.NormFloat64()
	}
	return n.Inner.Decide(p, noisy)
}

// AblationNoise measures OTEM's sensitivity to forecast error.
func AblationNoise() (*AblationResult, error) {
	return AblationNoiseContext(context.Background(), nil)
}

// AblationNoiseContext is AblationNoise on the batch runner.
func AblationNoiseContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	sigmas := []float64{0, 0.1, 0.3, 0.6}
	return runStudy(ctx, pool, "Ablation — forecast noise (US06 ×3, 25 kF)", len(sigmas),
		func(ctx context.Context, i int) (AblationRow, error) {
			sigma := sigmas[i]
			cfg := core.DefaultConfig()
			var wrap func(sim.Controller) sim.Controller
			if sigma > 0 {
				wrap = func(inner sim.Controller) sim.Controller {
					return NewNoisyForecast(inner, sigma, 1)
				}
			}
			return runOTEMConfig(ctx, fmt.Sprintf("sigma=%.0f%%", sigma*100), cfg, requests, wrap)
		})
}

// AblationPredictor replaces the oracle forecast with realistic predictors
// (see the forecast package) and measures how much of OTEM's advantage
// survives: the paper's evaluation assumes perfect P̂_e; a deployed system
// would not have it.
func AblationPredictor() (*AblationResult, error) {
	return AblationPredictorContext(context.Background(), nil)
}

// AblationPredictorContext is AblationPredictor on the batch runner.
func AblationPredictorContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	// Train the Markov predictor on different cycles than the evaluation
	// route (no leakage).
	train := [][]float64{
		vehicle.MidSizeEV().PowerSeries(mustCycle("LA92")),
		vehicle.MidSizeEV().PowerSeries(mustCycle("UDDS")),
	}
	markov, err := forecast.TrainMarkov(train, 16)
	if err != nil {
		return nil, err
	}
	predictors := []struct {
		label string
		make  func() forecast.Predictor
	}{
		{"oracle (paper)", nil},
		{"persistence", func() forecast.Predictor { return forecast.Persistence{} }},
		{"decay(tau=8s)", func() forecast.Predictor { return forecast.NewDecay(8) }},
		{"markov(16 bins)", func() forecast.Predictor { return markov }},
	}
	return runStudy(ctx, pool, "Ablation — forecast realism (US06 ×3, 25 kF)", len(predictors),
		func(ctx context.Context, i int) (AblationRow, error) {
			p := predictors[i]
			cfg := core.DefaultConfig()
			var wrap func(sim.Controller) sim.Controller
			if p.make != nil {
				pred := p.make() // fresh predictor per job: no shared state
				wrap = func(inner sim.Controller) sim.Controller { return forecast.Wrap(inner, pred) }
			}
			return runOTEMConfig(ctx, p.label, cfg, requests, wrap)
		})
}

// AblationSensing replaces the oracle SoC with the EKF estimate (see the
// bms package): a deployed OTEM would plan against an estimated state.
func AblationSensing() (*AblationResult, error) {
	return AblationSensingContext(context.Background(), nil)
}

// AblationSensingContext is AblationSensing on the batch runner.
func AblationSensingContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	variants := []struct {
		label      string
		initialSoC float64
		noiseV     float64
	}{
		{"oracle SoC (paper)", -1, 0},
		{"EKF, good prior", 0.95, 0.5},
		{"EKF, bad prior", 0.50, 1.0},
	}
	return runStudy(ctx, pool, "Ablation — state sensing (US06 ×3, 25 kF)", len(variants),
		func(ctx context.Context, i int) (AblationRow, error) {
			v := variants[i]
			cfg := core.DefaultConfig()
			var wrap func(sim.Controller) sim.Controller
			if v.initialSoC >= 0 {
				// Estimator built inside the job: it is stateful and must not
				// be shared across concurrent variants.
				est, err := bms.NewSoCEstimator(battery.NCR18650A(), 96, 24, v.initialSoC, 0.05)
				if err != nil {
					return AblationRow{}, err
				}
				est.MeasurementNoise = v.noiseV * v.noiseV
				wrap = func(inner sim.Controller) sim.Controller {
					return bms.NewSensedController(inner, est, v.noiseV, 1)
				}
			}
			return runOTEMConfig(ctx, v.label, cfg, requests, wrap)
		})
}

// AblationChemistry runs OTEM on the NCA-class default pack versus an
// LFP-class pack of comparable bus voltage, showing the methodology is
// chemistry-agnostic (the paper: "will not contradict our methodology").
func AblationChemistry() (*AblationResult, error) {
	return AblationChemistryContext(context.Background(), nil)
}

// AblationChemistryContext is AblationChemistry on the batch runner.
func AblationChemistryContext(ctx context.Context, pool *runner.Pool) (*AblationResult, error) {
	requests := ablationWorkload()
	variants := []struct {
		label    string
		cell     battery.CellParams
		series   int
		parallel int
	}{
		{"NCA 96S24P (default)", battery.NCR18650A(), 96, 24},
		{"LFP 112S30P", battery.LFP26650(), 112, 30},
	}
	return runStudy(ctx, pool, "Ablation — cell chemistry (US06 ×3, 25 kF)", len(variants),
		func(ctx context.Context, i int) (AblationRow, error) {
			v := variants[i]
			cell := v.cell
			plant, err := sim.NewPlant(sim.PlantConfig{
				Cell:         &cell,
				PackSeries:   v.series,
				PackParallel: v.parallel,
			})
			if err != nil {
				return AblationRow{}, err
			}
			ctrl, err := core.New(core.DefaultConfig())
			if err != nil {
				return AblationRow{}, err
			}
			res, err := sim.RunContext(ctx, plant, ctrl, requests, sim.Config{Horizon: core.DefaultConfig().Horizon})
			if err != nil {
				return AblationRow{}, fmt.Errorf("chemistry %s: %w", v.label, err)
			}
			return AblationRow{Label: v.label, Result: res}, nil
		})
}
