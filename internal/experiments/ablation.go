package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/battery"
	"repro/internal/bms"
	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// This file implements the ablation studies DESIGN.md lists as extensions
// beyond the paper: MPC horizon sweeps, cost-weight ablations and
// sensitivity to imperfect power-request forecasts (the paper assumes the
// estimated P_e is exact; a deployed OTEM would not have that luxury).

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	// Label names the configuration.
	Label string
	// Result is the run summary.
	Result sim.Result
}

// AblationResult is a labelled list of runs on a common workload.
type AblationResult struct {
	// Title describes the study.
	Title string
	// Rows holds the per-configuration results.
	Rows []AblationRow
}

// Write renders the ablation as a table.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	fmt.Fprintf(w, "%-24s %14s %12s %14s %12s\n",
		"configuration", "loss (%)", "avg P (W)", "violation (s)", "final SoE")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %14.6f %12.0f %14.0f %12.3f\n",
			row.Label, row.Result.QlossPct, row.Result.AvgPowerW,
			row.Result.ThermalViolationSec, row.Result.FinalSoE)
	}
}

// ablationWorkload is the common route for the studies: US06 ×3.
func ablationWorkload() []float64 {
	return vehicle.MidSizeEV().PowerSeries(mustCycle("US06").Repeat(3))
}

func mustCycle(name string) *drivecycle.Cycle {
	c, err := drivecycle.ByName(name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return c
}

func runOTEMConfig(label string, cfg core.Config, requests []float64, wrap func(sim.Controller) sim.Controller) (AblationRow, error) {
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		return AblationRow{}, err
	}
	var ctrl sim.Controller
	ctrl, err = core.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	if wrap != nil {
		ctrl = wrap(ctrl)
	}
	res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: cfg.Horizon})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Label: label, Result: res}, nil
}

// AblationHorizon sweeps the MPC control-window size (paper Alg. 1 line 4):
// too short a window cannot prepare TEB; longer windows cost compute for
// diminishing returns.
func AblationHorizon() (*AblationResult, error) {
	requests := ablationWorkload()
	out := &AblationResult{Title: "Ablation — MPC horizon (US06 ×3, 25 kF)"}
	for _, h := range []int{8, 16, 40, 80} {
		cfg := core.DefaultConfig()
		cfg.Horizon = h
		if cfg.BlockSize > h {
			cfg.BlockSize = h
		}
		row, err := runOTEMConfig(fmt.Sprintf("horizon=%ds", h), cfg, requests, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationWeights disables each Eq. 19 cost term in turn, showing what each
// contributes to the joint optimisation.
func AblationWeights() (*AblationResult, error) {
	requests := ablationWorkload()
	out := &AblationResult{Title: "Ablation — Eq. 19 cost terms (US06 ×3, 25 kF)"}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"full objective", func(*core.Config) {}},
		{"w1=0 (free cooling)", func(c *core.Config) { c.W1 = 0 }},
		{"w2=0 (no aging term)", func(c *core.Config) { c.W2 = 0 }},
		{"w3=0 (free energy)", func(c *core.Config) { c.W3 = 0 }},
		{"no TEB value", func(c *core.Config) { c.TEBWeight = 0 }},
		{"no temp pressure", func(c *core.Config) { c.TempPressureWeight = 0 }},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		row, err := runOTEMConfig(v.label, cfg, requests, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// NoisyForecast wraps a controller and corrupts the future entries of the
// forecast with multiplicative Gaussian noise before delegating, leaving
// the current step exact (the present request is measurable; only the
// prediction is uncertain). It models an imperfect route predictor.
type NoisyForecast struct {
	// Inner is the wrapped controller.
	Inner sim.Controller
	// Sigma is the relative noise level (e.g. 0.2 = ±20 %).
	Sigma float64

	rng *rand.Rand
	buf []float64
}

// NewNoisyForecast wraps inner with deterministic (seeded) forecast noise.
func NewNoisyForecast(inner sim.Controller, sigma float64, seed int64) *NoisyForecast {
	return &NoisyForecast{Inner: inner, Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Name implements sim.Controller.
func (n *NoisyForecast) Name() string {
	return fmt.Sprintf("%s+noise(%.0f%%)", n.Inner.Name(), n.Sigma*100)
}

// Decide implements sim.Controller.
func (n *NoisyForecast) Decide(p *sim.Plant, forecast []float64) sim.Action {
	if cap(n.buf) < len(forecast) {
		n.buf = make([]float64, len(forecast))
	}
	noisy := n.buf[:len(forecast)]
	copy(noisy, forecast)
	for k := 1; k < len(noisy); k++ {
		noisy[k] *= 1 + n.Sigma*n.rng.NormFloat64()
	}
	return n.Inner.Decide(p, noisy)
}

// AblationNoise measures OTEM's sensitivity to forecast error.
func AblationNoise() (*AblationResult, error) {
	requests := ablationWorkload()
	out := &AblationResult{Title: "Ablation — forecast noise (US06 ×3, 25 kF)"}
	for _, sigma := range []float64{0, 0.1, 0.3, 0.6} {
		cfg := core.DefaultConfig()
		var wrap func(sim.Controller) sim.Controller
		if sigma > 0 {
			s := sigma
			wrap = func(inner sim.Controller) sim.Controller {
				return NewNoisyForecast(inner, s, 1)
			}
		}
		row, err := runOTEMConfig(fmt.Sprintf("sigma=%.0f%%", sigma*100), cfg, requests, wrap)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationPredictor replaces the oracle forecast with realistic predictors
// (see the forecast package) and measures how much of OTEM's advantage
// survives: the paper's evaluation assumes perfect P̂_e; a deployed system
// would not have it.
func AblationPredictor() (*AblationResult, error) {
	requests := ablationWorkload()
	// Train the Markov predictor on different cycles than the evaluation
	// route (no leakage).
	train := [][]float64{
		vehicle.MidSizeEV().PowerSeries(mustCycle("LA92")),
		vehicle.MidSizeEV().PowerSeries(mustCycle("UDDS")),
	}
	markov, err := forecast.TrainMarkov(train, 16)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation — forecast realism (US06 ×3, 25 kF)"}
	predictors := []struct {
		label string
		make  func() forecast.Predictor
	}{
		{"oracle (paper)", nil},
		{"persistence", func() forecast.Predictor { return forecast.Persistence{} }},
		{"decay(tau=8s)", func() forecast.Predictor { return forecast.NewDecay(8) }},
		{"markov(16 bins)", func() forecast.Predictor { return markov }},
	}
	for _, p := range predictors {
		cfg := core.DefaultConfig()
		var wrap func(sim.Controller) sim.Controller
		if p.make != nil {
			pred := p.make()
			wrap = func(inner sim.Controller) sim.Controller { return forecast.Wrap(inner, pred) }
		}
		row, err := runOTEMConfig(p.label, cfg, requests, wrap)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationSensing replaces the oracle SoC with the EKF estimate (see the
// bms package): a deployed OTEM would plan against an estimated state.
func AblationSensing() (*AblationResult, error) {
	requests := ablationWorkload()
	out := &AblationResult{Title: "Ablation — state sensing (US06 ×3, 25 kF)"}
	variants := []struct {
		label      string
		initialSoC float64
		noiseV     float64
	}{
		{"oracle SoC (paper)", -1, 0},
		{"EKF, good prior", 0.95, 0.5},
		{"EKF, bad prior", 0.50, 1.0},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		var wrap func(sim.Controller) sim.Controller
		if v.initialSoC >= 0 {
			est, err := bms.NewSoCEstimator(battery.NCR18650A(), 96, 24, v.initialSoC, 0.05)
			if err != nil {
				return nil, err
			}
			est.MeasurementNoise = v.noiseV * v.noiseV
			noise := v.noiseV
			wrap = func(inner sim.Controller) sim.Controller {
				return bms.NewSensedController(inner, est, noise, 1)
			}
		}
		row, err := runOTEMConfig(v.label, cfg, requests, wrap)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationChemistry runs OTEM on the NCA-class default pack versus an
// LFP-class pack of comparable bus voltage, showing the methodology is
// chemistry-agnostic (the paper: "will not contradict our methodology").
func AblationChemistry() (*AblationResult, error) {
	requests := ablationWorkload()
	out := &AblationResult{Title: "Ablation — cell chemistry (US06 ×3, 25 kF)"}
	variants := []struct {
		label    string
		cell     battery.CellParams
		series   int
		parallel int
	}{
		{"NCA 96S24P (default)", battery.NCR18650A(), 96, 24},
		{"LFP 112S30P", battery.LFP26650(), 112, 30},
	}
	for _, v := range variants {
		cell := v.cell
		plant, err := sim.NewPlant(sim.PlantConfig{
			Cell:         &cell,
			PackSeries:   v.series,
			PackParallel: v.parallel,
		})
		if err != nil {
			return nil, err
		}
		ctrl, err := core.New(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(plant, ctrl, requests, sim.Config{Horizon: core.DefaultConfig().Horizon})
		if err != nil {
			return nil, fmt.Errorf("chemistry %s: %w", v.label, err)
		}
		out.Rows = append(out.Rows, AblationRow{Label: v.label, Result: res})
	}
	return out, nil
}
