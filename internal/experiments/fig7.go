package experiments

import (
	"fmt"
	"io"

	"repro/internal/chart"
	"repro/internal/sim"
	"repro/internal/units"
)

// Fig7Result reproduces the paper's Fig. 7: the temporal TEB analysis under
// OTEM — battery temperature, ultracapacitor SoE and the EV power request
// over US06 ×5. The paper's claim: the controller allocates charge to the
// ultracapacitor (or pre-cools) ahead of large power requests.
type Fig7Result struct {
	// Result is the traced OTEM run.
	Result sim.Result
	// PrechargeEvents counts windows where the SoE rose while driving and a
	// large power burst followed within the MPC horizon — the signature of
	// TEB preparation.
	PrechargeEvents int
	// BurstThresholdW defines what counted as a burst.
	BurstThresholdW float64
}

// Fig7 runs the traced OTEM experiment and detects TEB preparation events.
func Fig7() (*Fig7Result, error) {
	res, err := Run(RunSpec{Method: MethodOTEM, Cycle: "US06", Repeats: 5, Trace: true})
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	out := &Fig7Result{Result: res, BurstThresholdW: 50e3}
	out.PrechargeEvents = countPrechargeEvents(res.Trace, out.BurstThresholdW, 40)
	return out, nil
}

// countPrechargeEvents scans the trace for bursts (power above threshold)
// preceded by a net SoE rise within the preceding lookahead window.
func countPrechargeEvents(tr *sim.Trace, threshold float64, lookahead int) int {
	events := 0
	inBurst := false
	for i := range tr.PowerRequest {
		if tr.PowerRequest[i] < threshold {
			inBurst = false
			continue
		}
		if inBurst {
			continue // count each burst once
		}
		inBurst = true
		lo := i - lookahead
		if lo < 0 {
			lo = 0
		}
		// Net SoE change across the pre-burst window.
		if tr.SoE[i] > tr.SoE[lo]+0.005 {
			events++
		}
	}
	return events
}

// Write renders the joint series: power request, SoE and temperature.
func (r *Fig7Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7 — TEB preparation under OTEM, US06 ×5, 25 kF")
	fmt.Fprintf(w, "pre-charge events ahead of >%.0f kW bursts: %d\n\n", r.BurstThresholdW/1e3, r.PrechargeEvents)

	tr := r.Result.Trace
	xmax := tr.Time[len(tr.Time)-1]
	pc := chart.New("EV power request (kW)")
	pc.XMax = xmax
	pc.XLabel = "s"
	kw := make([]float64, len(tr.PowerRequest))
	for i, p := range tr.PowerRequest {
		kw[i] = p / 1e3
	}
	pc.Add("P_e", kw)
	pc.Render(w)
	fmt.Fprintln(w)

	sc := chart.New("ultracapacitor SoE (TEB preparation)")
	sc.XMax = xmax
	sc.XLabel = "s"
	sc.Add("SoE", tr.SoE)
	sc.Render(w)
	fmt.Fprintln(w)

	tc := chart.New("battery temperature (°C)")
	tc.XMax = xmax
	tc.XLabel = "s"
	tc.WithHLine(40)
	tc.Add("T_b", toCelsius(tr.BatteryTemp))
	tc.Render(w)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s %12s %8s %10s %12s\n", "t (s)", "P_e (kW)", "SoE", "T_b (°C)", "P_cool (kW)")
	for i := 0; i < len(tr.Time); i += 60 {
		fmt.Fprintf(w, "%8.0f %12.1f %8.3f %10.2f %12.2f\n",
			tr.Time[i], tr.PowerRequest[i]/1e3, tr.SoE[i],
			units.KToC(tr.BatteryTemp[i]), tr.CoolerPower[i]/1e3)
	}
}
