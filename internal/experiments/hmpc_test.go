package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestHMPCCompareWins is the PR's headline acceptance check: the two-layer
// controller must beat flat OTEM on at least one preview scenario at equal
// comfort, and must never lose comfort anywhere (the thermal-violation
// seconds match on every row).
func TestHMPCCompareWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison grid in -short mode")
	}
	res, err := HMPCCompareContext(context.Background(), nil, HMPCScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(HMPCScenarios()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(HMPCScenarios()))
	}
	wins := 0
	for _, row := range res.Rows {
		if !row.EqualComfort() {
			t.Errorf("%s: comfort differs (flat %v s vs hmpc %v s violation)",
				row.Scenario.Name, row.Flat.ThermalViolationSec, row.Hier.ThermalViolationSec)
		}
		if row.Flat.Controller != "HMPC" || row.Hier.Controller != "HMPC" {
			t.Errorf("%s: unexpected controllers %q/%q", row.Scenario.Name,
				row.Flat.Controller, row.Hier.Controller)
		}
		if row.Flat.Plan.Blocks != 1 {
			t.Errorf("%s: flat baseline outer plan has %d blocks, want collapsed 1",
				row.Scenario.Name, row.Flat.Plan.Blocks)
		}
		if row.Hier.Plan.Blocks < 2 {
			t.Errorf("%s: hierarchical plan has %d blocks, want ≥2",
				row.Scenario.Name, row.Hier.Plan.Blocks)
		}
		if row.Wins() {
			wins++
		}
	}
	if wins < 1 {
		var b strings.Builder
		res.Write(&b)
		t.Fatalf("two-layer beats flat on 0 scenarios, want ≥1\n%s", b.String())
	}

	var b strings.Builder
	res.Write(&b)
	out := b.String()
	if !strings.Contains(out, "Scenario") || !strings.Contains(out, "✓") {
		t.Errorf("table rendering lost the header or the win marker:\n%s", out)
	}
}

// TestHMPCCompareCancellation: a pre-canceled context aborts the grid.
func TestHMPCCompareCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := HMPCCompareContext(ctx, nil, HMPCScenarios()); err == nil {
		t.Fatal("canceled context returned no error")
	}
}
