package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cooling"
	"repro/internal/runner"
	"repro/internal/thermal"
	"repro/internal/units"
)

// HotspotRow reports the distributed-model replay of one methodology.
type HotspotRow struct {
	// Method is the methodology name.
	Method Methodology
	// LumpedMaxT is the peak battery temperature the lumped (two-node)
	// plant reported, kelvin.
	LumpedMaxT float64
	// DistributedMaxT is the peak module temperature when the same heat
	// and cooling profile is replayed through the N-module network.
	DistributedMaxT float64
	// MaxGradient is the largest hot-to-cold module spread observed.
	MaxGradient float64
	// ViolationSec counts seconds any module exceeded the safe limit
	// (versus the lumped model's count).
	ViolationSec float64
}

// HotspotResult validates the paper's lumped-model simplification (§II-D:
// "we can simplify the heat exchange model … without affecting the
// concept"): the controller runs on the lumped model; the distributed
// model replays the identical heat/cooling profile and reports how much
// hotter the worst module gets.
type HotspotResult struct {
	// Modules is the channel discretisation used.
	Modules int
	// Rows holds one replay per methodology.
	Rows []HotspotRow
}

// Hotspot runs the study for the parallel baseline and OTEM on US06 ×3
// with the default pool. See HotspotContext.
func Hotspot() (*HotspotResult, error) {
	return HotspotContext(context.Background(), nil)
}

// HotspotContext runs the per-methodology simulate-then-replay chains on
// the batch runner; a nil pool uses the defaults.
func HotspotContext(ctx context.Context, pool *runner.Pool) (*HotspotResult, error) {
	const modules = 8
	methods := []Methodology{MethodParallel, MethodOTEM}
	rows, err := runner.Map(ctx, pool, len(methods),
		func(ctx context.Context, i int) (HotspotRow, error) {
			m := methods[i]
			res, err := RunContext(ctx, RunSpec{Method: m, Cycle: "US06", Repeats: 3, Trace: true})
			if err != nil {
				return HotspotRow{}, fmt.Errorf("hotspot %s: %w", m, err)
			}
			row, err := replayDistributed(m, res.Trace.BatteryHeat, res.Trace.CoolerPower, modules)
			if err != nil {
				return HotspotRow{}, err
			}
			row.LumpedMaxT = res.MaxBatteryTemp
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return &HotspotResult{Modules: modules, Rows: rows}, nil
}

// replayDistributed drives the N-module network with a recorded heat and
// cooling-power profile.
func replayDistributed(method Methodology, heat, coolPower []float64, modules int) (HotspotRow, error) {
	params := cooling.DefaultParams()
	net, err := thermal.NewPackNetwork(params, modules, 298)
	if err != nil {
		return HotspotRow{}, err
	}
	row := HotspotRow{Method: method}
	safe := units.CToK(40)
	ambient := 298.0
	for i := range heat {
		if coolPower[i] > params.PumpPower/2 {
			// Invert Eq. 16 against the network's own outlet temperature.
			pc := coolPower[i] - params.PumpPower
			ti := net.OutletTemp() - params.CoolerEfficiency*pc/params.FlowHeatRate
			if ti < params.MinInletTemp {
				ti = params.MinInletTemp
			}
			err = net.StepActive(heat[i], ti, 1)
		} else {
			err = net.StepPassive(heat[i], ambient, 1)
		}
		if err != nil {
			return HotspotRow{}, err
		}
		if t := net.MaxBatteryTemp(); t > row.DistributedMaxT {
			row.DistributedMaxT = t
		}
		if g := net.Gradient(); g > row.MaxGradient {
			row.MaxGradient = g
		}
		if net.MaxBatteryTemp() > safe {
			row.ViolationSec++
		}
	}
	return row, nil
}

// Write renders the study.
func (r *HotspotResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Hotspot study — lumped vs %d-module distributed pack (US06 ×3)\n", r.Modules)
	fmt.Fprintf(w, "%-12s %14s %18s %14s %16s\n",
		"Method", "lumped max °C", "distributed max °C", "gradient K", "module viol. s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %14.2f %18.2f %14.2f %16.0f\n",
			row.Method, units.KToC(row.LumpedMaxT), units.KToC(row.DistributedMaxT),
			row.MaxGradient, row.ViolationSec)
	}
}
