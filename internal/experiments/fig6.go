package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/chart"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/units"
)

// Fig6Result reproduces the paper's Fig. 6: the battery temperature over
// US06 ×5 (25 kF bank) for each methodology. The paper's claim: the dual
// architecture reacts only at its threshold, while OTEM keeps the
// temperature lower throughout by jointly scheduling the cooler and the
// ultracapacitor.
type Fig6Result struct {
	// MethodsList holds the methodology names.
	MethodsList []Methodology
	// Results holds the per-method runs with traces, aligned to MethodsList.
	Results []sim.Result
}

// Fig6 runs all four methodologies on the Fig. 6 workload with the default
// pool. See Fig6Context.
func Fig6() (*Fig6Result, error) {
	return Fig6Context(context.Background(), nil)
}

// Fig6Context runs the per-methodology traced simulations on the batch
// runner; a nil pool uses the defaults.
func Fig6Context(ctx context.Context, pool *runner.Pool) (*Fig6Result, error) {
	out := &Fig6Result{MethodsList: Methods()}
	results, err := runner.Map(ctx, pool, len(out.MethodsList),
		func(ctx context.Context, i int) (sim.Result, error) {
			m := out.MethodsList[i]
			res, err := RunContext(ctx, RunSpec{Method: m, Cycle: "US06", Repeats: 5, Trace: true})
			if err != nil {
				return sim.Result{}, fmt.Errorf("fig6 %s: %w", m, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out.Results = results
	return out, nil
}

// ResultFor returns the run for a methodology name, or false.
func (r *Fig6Result) ResultFor(method Methodology) (sim.Result, bool) {
	for i, m := range r.MethodsList {
		if m == method {
			return r.Results[i], true
		}
	}
	return sim.Result{}, false
}

// Write renders peak/average temperatures per methodology plus series.
func (r *Fig6Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6 — Battery temperature per methodology, US06 ×5, 25 kF")
	fmt.Fprintf(w, "%-14s %12s %12s %16s\n", "Methodology", "Max T (°C)", "Avg T (°C)", "Violation (s)")
	for i, m := range r.MethodsList {
		res := r.Results[i]
		fmt.Fprintf(w, "%-14s %12.2f %12.2f %16.0f\n",
			m, units.KToC(res.MaxBatteryTemp), units.KToC(res.AvgBatteryTemp), res.ThermalViolationSec)
	}
	fmt.Fprintln(w)
	c := chart.New("battery temperature (°C) vs time — US06 ×5, 25 kF")
	c.YLabel = "°C"
	c.XLabel = "s"
	c.WithHLine(40)
	for i, m := range r.MethodsList {
		c.XMax = r.Results[i].Trace.Time[len(r.Results[i].Trace.Time)-1]
		c.Add(string(m), toCelsius(r.Results[i].Trace.BatteryTemp))
	}
	c.Render(w)
}
