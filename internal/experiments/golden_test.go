package experiments

import (
	"testing"

	"repro/internal/units"
)

// TestGoldenHeadlines pins the headline reproduction numbers on the paper's
// canonical workload (US06 ×5, 25 kF) inside tolerance bands. The bands are
// intentionally loose enough to survive benign refactoring but tight enough
// that a physics or controller regression trips them — this test is the
// repository's reproduction contract.
func TestGoldenHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MPC controller; skipped in -short")
	}
	otem, err := Run(RunSpec{Method: MethodOTEM, Cycle: "US06", Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(RunSpec{Method: MethodParallel, Cycle: "US06", Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}

	inBand := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
		}
	}
	// OTEM absolute bands (measured 0.00687 % / 20.6 kW / 32.6 °C peak).
	inBand("OTEM capacity loss %", otem.QlossPct, 0.005, 0.009)
	inBand("OTEM average power W", otem.AvgPowerW, 19e3, 22e3)
	inBand("OTEM peak temp °C", units.KToC(otem.MaxBatteryTemp), 26, 38)
	if otem.ThermalViolationSec != 0 {
		t.Errorf("OTEM violated the safe zone for %v s", otem.ThermalViolationSec)
	}

	// The Table-I@25 kF ratio: OTEM between 45 % and 70 % of parallel
	// (paper 42.9 %, measured 56.6 %).
	inBand("OTEM/parallel loss ratio", otem.QlossPct/parallel.QlossPct, 0.45, 0.70)

	// Parallel absolute band (measured 0.01215 % / 16.6 kW).
	inBand("parallel capacity loss %", parallel.QlossPct, 0.009, 0.016)
	inBand("parallel average power W", parallel.AvgPowerW, 15.5e3, 18e3)

	// Determinism: the exact same run must reproduce bit for bit.
	again, err := Run(RunSpec{Method: MethodOTEM, Cycle: "US06", Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	if again.QlossPct != otem.QlossPct || again.HEESEnergyJ != otem.HEESEnergyJ {
		t.Errorf("nondeterministic reproduction: %v vs %v", again.QlossPct, otem.QlossPct)
	}
}
