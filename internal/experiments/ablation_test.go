package experiments

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
)

func TestNoisyForecastDeterministicAndPresentExact(t *testing.T) {
	var got [][]float64
	inner := probeController{fn: func(fc []float64) {
		got = append(got, append([]float64(nil), fc...))
	}}
	n := NewNoisyForecast(inner, 0.5, 42)
	if !strings.Contains(n.Name(), "noise") {
		t.Errorf("Name = %q", n.Name())
	}
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fc := []float64{10e3, 20e3, 30e3}
	n.Decide(plant, fc)
	if got[0][0] != 10e3 {
		t.Errorf("present corrupted: %v", got[0][0])
	}
	if got[0][1] == 20e3 && got[0][2] == 30e3 {
		t.Error("future not perturbed")
	}
	// Same seed → same perturbation sequence.
	n2 := NewNoisyForecast(probeController{fn: func(fc []float64) {
		got = append(got, append([]float64(nil), fc...))
	}}, 0.5, 42)
	n2.Decide(plant, fc)
	for i := range got[0] {
		if got[0][i] != got[1][i] {
			t.Fatalf("same seed diverged: %v vs %v", got[0], got[1])
		}
	}
}

type probeController struct {
	fn func([]float64)
}

func (p probeController) Name() string { return "probe" }
func (p probeController) Decide(_ *sim.Plant, fc []float64) sim.Action {
	p.fn(fc)
	return sim.Action{Arch: sim.ArchBatteryDirect}
}

func TestAblationHorizonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MPC runs; skipped in -short")
	}
	r, err := AblationHorizon()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The shortest horizon must be clearly worse than the default (it is
	// too myopic to prepare TEB or justify cooling).
	short := r.Rows[0].Result.QlossPct
	def := r.Rows[2].Result.QlossPct
	if short <= def {
		t.Errorf("8 s horizon loss %v should exceed 40 s default %v", short, def)
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "horizon=8s") {
		t.Error("Write output malformed")
	}
}

func TestAblationNoiseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MPC runs; skipped in -short")
	}
	r, err := AblationNoise()
	if err != nil {
		t.Fatal(err)
	}
	exact := r.Rows[0].Result.QlossPct
	heavy := r.Rows[len(r.Rows)-1].Result.QlossPct
	if heavy <= exact {
		t.Errorf("heavy noise loss %v should exceed exact %v", heavy, exact)
	}
	// Graceful degradation: even ±60 % noise must stay within 2× of exact.
	if heavy > 2*exact {
		t.Errorf("noise degradation too severe: %v vs %v", heavy, exact)
	}
}

func TestAblationPredictorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MPC runs; skipped in -short")
	}
	r, err := AblationPredictor()
	if err != nil {
		t.Fatal(err)
	}
	oracle := r.Rows[0].Result.QlossPct
	// Every realistic predictor must stay within 25 % of the oracle and
	// still beat the parallel baseline.
	plant, err := sim.NewPlant(sim.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.Run(plant, policy.Parallel{}, ablationWorkload(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows[1:] {
		if row.Result.QlossPct > oracle*1.25 {
			t.Errorf("%s loss %v more than 25%% above oracle %v", row.Label, row.Result.QlossPct, oracle)
		}
		if row.Result.QlossPct >= par.QlossPct {
			t.Errorf("%s loss %v should still beat parallel %v", row.Label, row.Result.QlossPct, par.QlossPct)
		}
	}
}

func TestAblationSensingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("3 MPC runs; skipped in -short")
	}
	r, err := AblationSensing()
	if err != nil {
		t.Fatal(err)
	}
	oracle := r.Rows[0].Result.QlossPct
	for _, row := range r.Rows[1:] {
		// EKF sensing must be nearly free: within 5 % of oracle loss, no
		// thermal violations.
		if row.Result.QlossPct > oracle*1.05 {
			t.Errorf("%s loss %v more than 5%% above oracle %v", row.Label, row.Result.QlossPct, oracle)
		}
		if row.Result.ThermalViolationSec > 0 {
			t.Errorf("%s violated the safe zone", row.Label)
		}
	}
}

func TestAblationChemistryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("2 MPC runs; skipped in -short")
	}
	r, err := AblationChemistry()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	nca, lfp := r.Rows[0].Result, r.Rows[1].Result
	// The methodology holds the safe zone on both chemistries.
	if nca.ThermalViolationSec > 0 || lfp.ThermalViolationSec > 0 {
		t.Error("OTEM violated the safe zone on a chemistry")
	}
	// LFP's higher activation energy and thermal headroom → slower aging.
	if lfp.QlossPct >= nca.QlossPct {
		t.Errorf("LFP loss %v should be below NCA %v", lfp.QlossPct, nca.QlossPct)
	}
}
