package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/hmpc"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/units"
)

// HMPCScenario is one preview scenario of the flat-versus-hierarchical
// comparison: a named route (registered cycle or synthesized usage route)
// at a fixed ambient.
type HMPCScenario struct {
	// Name labels the row.
	Name string
	// Spec is the hierarchical spec; the flat baseline is derived from it
	// by collapsing the outer layer (see collapse).
	Spec hmpc.Spec
}

// HMPCRow holds the flat and hierarchical runs of one scenario.
type HMPCRow struct {
	Scenario HMPCScenario
	// Flat is the collapsed-outer run: bit-identical to the single-layer
	// OTEM controller on the same plant and realized power series (the
	// identity is property-tested in the otem package), so the baseline
	// sees exactly the same route, ambient and ultracapacitor bank.
	Flat *hmpc.Result
	// Hier is the two-layer run with route preview enabled.
	Hier *hmpc.Result
}

// EnergySavedPct is the hierarchical HEES energy saving relative to flat.
func (r HMPCRow) EnergySavedPct() float64 {
	return 100 * (r.Flat.HEESEnergyJ - r.Hier.HEESEnergyJ) / r.Flat.HEESEnergyJ
}

// QlossSavedPct is the hierarchical capacity-loss saving relative to flat.
func (r HMPCRow) QlossSavedPct() float64 {
	return 100 * (r.Flat.QlossPct - r.Hier.QlossPct) / r.Flat.QlossPct
}

// PeakTempDropK is how much cooler the hierarchical peak pack temperature
// runs (positive = cooler).
func (r HMPCRow) PeakTempDropK() float64 {
	return r.Flat.MaxBatteryTemp - r.Hier.MaxBatteryTemp
}

// EqualComfort reports whether both runs kept the pack inside the thermal
// limit for the same number of seconds — the comparison is only fair at
// equal comfort.
func (r HMPCRow) EqualComfort() bool {
	//lint:ignore floatcompare violation seconds are whole-second counters accumulated in steps of 1; exact compare intended
	return r.Flat.ThermalViolationSec == r.Hier.ThermalViolationSec
}

// Wins reports whether the hierarchical run beats flat at equal comfort,
// in either of the two ways route preview can pay off:
//
//   - the efficiency win: less HEES energy without aging regression (the
//     preview lets the planner bank ultracapacitor charge before demand
//     peaks instead of reacting to them), or
//   - the thermal win: a cooler peak pack temperature AND less capacity
//     loss (the planner pre-cools ahead of a predicted hot stretch),
//     possibly spending extra cooling energy to buy it — the paper's
//     headline trade.
func (r HMPCRow) Wins() bool {
	if !r.EqualComfort() {
		return false
	}
	const eps = 0.05 // percent / kelvin noise floor
	efficiency := r.EnergySavedPct() > eps && r.QlossSavedPct() > -eps
	thermal := r.QlossSavedPct() > eps && r.PeakTempDropK() > eps
	return efficiency || thermal
}

// HMPCResult is the flat-versus-two-layer comparison over the preview
// scenarios.
type HMPCResult struct {
	Rows []HMPCRow
}

// HMPCScenarios returns the committed comparison grid: hot-ambient routes
// where the outer layer's route preview (upcoming highway merges, long
// grades, duty transitions) is informative. 308 K ≈ 35 °C.
func HMPCScenarios() []HMPCScenario {
	return []HMPCScenario{
		{Name: "UDDS @35°C", Spec: hmpc.Spec{Cycle: "UDDS", AmbientK: 308}},
		{Name: "US06 @37°C", Spec: hmpc.Spec{Cycle: "US06", AmbientK: 310}},
		{Name: "commuter @35°C", Spec: hmpc.Spec{Usage: "commuter", RouteSeconds: 900, Seed: 1, AmbientK: 308}},
		{Name: "highway @35°C", Spec: hmpc.Spec{Usage: "highway", RouteSeconds: 900, Seed: 1, AmbientK: 308}},
	}
}

// collapse derives the flat baseline spec: a single outer block with every
// tracking weight and divergence tolerance explicitly disabled (negative is
// the off switch), which reduces the stack to the plain OTEM controller.
func collapse(s hmpc.Spec) hmpc.Spec {
	s.MaxBlocks = 1
	s.SoCRefWeight, s.TempRefWeight = -1, -1
	s.SoCTol, s.TempTolK = -1, -1
	s.OuterSoCTol, s.OuterTempTolK = -1, -1
	return s
}

// HMPCCompare runs the comparison with the default pool and scenarios.
func HMPCCompare() (*HMPCResult, error) {
	return HMPCCompareContext(context.Background(), nil, HMPCScenarios())
}

// HMPCCompareContext runs flat and hierarchical simulations for every
// scenario on the batch runner; a nil pool uses the defaults.
func HMPCCompareContext(ctx context.Context, pool *runner.Pool, scenarios []HMPCScenario) (*HMPCResult, error) {
	// Flatten to 2N independent runs: even index = flat, odd = hierarchical.
	runs, err := runner.Map(ctx, pool, 2*len(scenarios),
		func(ctx context.Context, k int) (*hmpc.Result, error) {
			sc := scenarios[k/2]
			spec := sc.Spec
			if k%2 == 0 {
				spec = collapse(spec)
			}
			res, err := hmpc.Run(ctx, spec, sim.Config{})
			if err != nil {
				return nil, fmt.Errorf("hmpc %s: %w", sc.Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := &HMPCResult{Rows: make([]HMPCRow, len(scenarios))}
	for i, sc := range scenarios {
		out.Rows[i] = HMPCRow{Scenario: sc, Flat: runs[2*i], Hier: runs[2*i+1]}
	}
	return out, nil
}

// Write renders the comparison table.
func (r *HMPCResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Hierarchical MPC — flat OTEM vs two-layer route preview (equal comfort)")
	fmt.Fprintf(w, "%-16s %10s %10s %9s %9s %8s %8s %6s %5s\n",
		"Scenario", "flat MJ", "hmpc MJ", "ΔE %", "ΔQloss %", "flat °C", "hmpc °C", "ΔT K", "win")
	for _, row := range r.Rows {
		win := " "
		if row.Wins() {
			win = "✓"
		}
		fmt.Fprintf(w, "%-16s %10.2f %10.2f %9.2f %9.2f %8.2f %8.2f %6.2f %5s\n",
			row.Scenario.Name,
			row.Flat.HEESEnergyJ/1e6, row.Hier.HEESEnergyJ/1e6,
			row.EnergySavedPct(), row.QlossSavedPct(),
			units.KToC(row.Flat.MaxBatteryTemp), units.KToC(row.Hier.MaxBatteryTemp),
			row.PeakTempDropK(), win)
	}
}
