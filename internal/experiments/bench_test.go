// Batch-engine benchmarks: the Fig. 8/9 sweep and the Table I grid at
// parallelism 1 versus GOMAXPROCS. The work is identical (the runner
// dispatches the same jobs in the same index order and results land in the
// same slots), so on an N-core machine the Parallel variants approach N×
// the Sequential throughput while reporting bit-identical headline metrics:
//
//	go test -bench 'Batch' -benchtime 1x ./internal/experiments
package experiments

import (
	"context"
	"testing"

	"repro/internal/runner"
)

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	pool := runner.New(runner.Workers(workers))
	for i := 0; i < b.N; i++ {
		sweep, err := SweepContext(context.Background(), 1, pool)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Fig8(sweep).OTEMAvgReductionPct(), "loss-reduction-pct")
	}
}

// BenchmarkFig8BatchSequential runs the 6-cycle × 4-methodology sweep on a
// single worker: the pre-runner baseline.
func BenchmarkFig8BatchSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkFig8BatchParallel runs the same sweep at GOMAXPROCS workers.
func BenchmarkFig8BatchParallel(b *testing.B) { benchSweep(b, 0) }

func benchTableI(b *testing.B, workers int) {
	b.Helper()
	pool := runner.New(runner.Workers(workers))
	for i := 0; i < b.N; i++ {
		r, err := TableIContext(context.Background(), pool)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LossPct(0, 2), "otem-loss-at-5kF-pct")
	}
}

// BenchmarkTableIBatchSequential runs the size × methodology grid on a
// single worker.
func BenchmarkTableIBatchSequential(b *testing.B) { benchTableI(b, 1) }

// BenchmarkTableIBatchParallel runs the same grid at GOMAXPROCS workers.
func BenchmarkTableIBatchParallel(b *testing.B) { benchTableI(b, 0) }

// TestSweepDeterministicAcrossParallelism pins the batch engine's ordering
// guarantee on the real Fig. 8/9 grid: the sweep at 1 worker and at 8
// workers must agree exactly, methodology by methodology.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps with MPC runs")
	}
	ctx := context.Background()
	seq, err := SweepContext(ctx, 1, runner.New(runner.Workers(1)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepContext(ctx, 1, runner.New(runner.Workers(8)))
	if err != nil {
		t.Fatal(err)
	}
	for i, cycle := range seq.Cycles {
		for j, m := range seq.MethodsList {
			a, b := seq.Results[i][j], par.Results[i][j]
			if a.QlossPct != b.QlossPct || a.AvgPowerW != b.AvgPowerW || a.Steps != b.Steps {
				t.Errorf("%s/%s differs between 1 and 8 workers: %+v vs %+v", cycle, m, a, b)
			}
		}
	}
}
