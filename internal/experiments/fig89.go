package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/drivecycle"
	"repro/internal/runner"
	"repro/internal/sim"
)

// SweepResult holds the multi-cycle × multi-methodology sweep both Fig. 8
// (battery lifetime) and Fig. 9 (power consumption) are derived from —
// the paper runs the same simulations for both figures.
type SweepResult struct {
	// Cycles are the drive-cycle names (rows).
	Cycles []string
	// MethodsList are the methodology names (columns).
	MethodsList []Methodology
	// Results[i][j] is the run of Cycles[i] under MethodsList[j].
	Results [][]sim.Result
	// Repeats is how many times each cycle was repeated.
	Repeats int
}

// Sweep runs every methodology over every standard drive cycle with the
// default pool. See SweepContext.
func Sweep(repeats int) (*SweepResult, error) {
	return SweepContext(context.Background(), repeats, nil)
}

// SweepContext runs the full cycle×methodology grid on the batch runner.
// This is the expensive experiment of the suite (24 simulations, four of
// them MPC); every run owns a fresh plant and controller and results land
// in fixed matrix slots, so the outcome is bit-identical at any
// parallelism. A nil pool uses the defaults (GOMAXPROCS workers).
func SweepContext(ctx context.Context, repeats int, pool *runner.Pool) (*SweepResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	out := &SweepResult{
		Cycles:      drivecycle.Names(),
		MethodsList: Methods(),
		Repeats:     repeats,
	}
	m := len(out.MethodsList)
	flat, err := runner.Map(ctx, pool, len(out.Cycles)*m,
		func(ctx context.Context, k int) (sim.Result, error) {
			cyc, meth := out.Cycles[k/m], out.MethodsList[k%m]
			res, err := RunContext(ctx, RunSpec{Method: meth, Cycle: cyc, Repeats: repeats})
			if err != nil {
				return sim.Result{}, fmt.Errorf("sweep %s/%s: %w", cyc, meth, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out.Results = make([][]sim.Result, len(out.Cycles))
	for i := range out.Results {
		out.Results[i] = flat[i*m : (i+1)*m : (i+1)*m]
	}
	return out, nil
}

func (s *SweepResult) methodIndex(method Methodology) int {
	for j, m := range s.MethodsList {
		if m == method {
			return j
		}
	}
	return -1
}

// Fig8Result is the paper's Fig. 8: the battery capacity-loss ratio of each
// methodology relative to the parallel architecture, per drive cycle.
type Fig8Result struct {
	*SweepResult
}

// Fig8 derives the lifetime comparison from a sweep.
func Fig8(s *SweepResult) *Fig8Result { return &Fig8Result{SweepResult: s} }

// Ratio returns capacity loss of (cycle i, method j) relative to parallel
// on the same cycle (parallel ≡ 1).
func (r *Fig8Result) Ratio(i, j int) float64 {
	p := r.methodIndex(MethodParallel)
	return r.Results[i][j].BLTRatio(r.Results[i][p])
}

// OTEMAvgReductionPct returns the headline number: the average capacity-loss
// reduction of OTEM vs the parallel architecture across cycles (paper:
// 16.38 %, abstract 16.8 % BLT improvement).
func (r *Fig8Result) OTEMAvgReductionPct() float64 {
	o := r.methodIndex(MethodOTEM)
	var sum float64
	for i := range r.Cycles {
		sum += 1 - r.Ratio(i, o)
	}
	return 100 * sum / float64(len(r.Cycles))
}

// Write renders the per-cycle loss-ratio table.
func (r *Fig8Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8 — Capacity-loss ratio vs Parallel, cycles ×%d, 25 kF\n", r.Repeats)
	fmt.Fprintf(w, "%-8s", "Cycle")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for i, cyc := range r.Cycles {
		fmt.Fprintf(w, "%-8s", cyc)
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %14.3f", r.Ratio(i, j))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nOTEM average capacity-loss reduction vs Parallel: %.1f %% (paper: 16.38 %%)\n",
		r.OTEMAvgReductionPct())
}

// Fig9Result is the paper's Fig. 9: average power consumption (EV plus
// active cooling) per methodology per cycle.
type Fig9Result struct {
	*SweepResult
}

// Fig9 derives the power comparison from a sweep.
func Fig9(s *SweepResult) *Fig9Result { return &Fig9Result{SweepResult: s} }

// AvgPower returns the average power of (cycle i, method j), watts.
func (r *Fig9Result) AvgPower(i, j int) float64 { return r.Results[i][j].AvgPowerW }

// OTEMSavingVsCoolingPct returns the headline number: OTEM's average power
// reduction vs the pure active-cooling methodology across cycles (paper:
// 12.1 %).
func (r *Fig9Result) OTEMSavingVsCoolingPct() float64 {
	o := r.methodIndex(MethodOTEM)
	c := r.methodIndex(MethodCooling)
	var sum float64
	for i := range r.Cycles {
		sum += 1 - r.Results[i][o].AvgPowerW/r.Results[i][c].AvgPowerW
	}
	return 100 * sum / float64(len(r.Cycles))
}

// Write renders the per-cycle average-power table.
func (r *Fig9Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig. 9 — Average power consumption (W), cycles ×%d, 25 kF\n", r.Repeats)
	fmt.Fprintf(w, "%-8s", "Cycle")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for i, cyc := range r.Cycles {
		fmt.Fprintf(w, "%-8s", cyc)
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %14.0f", r.AvgPower(i, j))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nOTEM average power saving vs ActiveCooling: %.1f %% (paper: 12.1 %%)\n",
		r.OTEMSavingVsCoolingPct())
}
