package experiments

import (
	"strings"
	"testing"
)

func TestHotspotStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MPC controller; skipped in -short")
	}
	r, err := Hotspot()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var parallel, otem HotspotRow
	for _, row := range r.Rows {
		switch row.Method {
		case MethodParallel:
			parallel = row
		case MethodOTEM:
			otem = row
		}
	}
	// Passive architectures have no coolant advection, hence no gradient.
	if parallel.MaxGradient > 0.5 {
		t.Errorf("parallel gradient %.2f K, want ~0 (no flow)", parallel.MaxGradient)
	}
	// Active cooling creates a real inlet→outlet gradient, so the worst
	// module runs hotter than the lumped model predicts.
	if otem.MaxGradient < 1 {
		t.Errorf("OTEM gradient %.2f K, want a visible channel gradient", otem.MaxGradient)
	}
	if otem.DistributedMaxT <= otem.LumpedMaxT {
		t.Error("distributed hotspot should exceed the lumped estimate under cooling")
	}
	// The paper's simplification survives: even the worst module stays
	// inside the safe zone under OTEM.
	if otem.ViolationSec > 0 {
		t.Errorf("worst module violated the safe zone for %v s", otem.ViolationSec)
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "Hotspot") {
		t.Error("Write output malformed")
	}
}
