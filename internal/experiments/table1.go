package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/sim"
)

// TableIResult reproduces the paper's Table I: average power and capacity
// loss for ultracapacitor sizes {5, 10, 20, 25} kF under the Parallel, Dual
// and OTEM methodologies on US06 ×5. Capacity losses are normalised to the
// parallel architecture at 25 kF (= 100 %), as in the paper.
type TableIResult struct {
	// SizesF are the swept bank sizes in farads (rows).
	SizesF []float64
	// MethodsList are the compared methodologies (columns).
	MethodsList []Methodology
	// Results[i][j] is the run at SizesF[i] under MethodsList[j].
	Results [][]sim.Result
	// BaselineLoss is the parallel@25 kF capacity loss used for the 100 %
	// normalisation.
	BaselineLoss float64
}

// TableI runs the sizing sweep with the default pool. See TableIContext.
func TableI() (*TableIResult, error) {
	return TableIContext(context.Background(), nil)
}

// TableIContext runs the size×methodology grid (12 simulations, 4 of them
// MPC) on the batch runner; a nil pool uses the defaults.
func TableIContext(ctx context.Context, pool *runner.Pool) (*TableIResult, error) {
	out := &TableIResult{
		SizesF:      []float64{5000, 10000, 20000, 25000},
		MethodsList: []Methodology{MethodParallel, MethodDual, MethodOTEM},
	}
	m := len(out.MethodsList)
	flat, err := runner.Map(ctx, pool, len(out.SizesF)*m,
		func(ctx context.Context, k int) (sim.Result, error) {
			size, meth := out.SizesF[k/m], out.MethodsList[k%m]
			res, err := RunContext(ctx, RunSpec{Method: meth, Cycle: "US06", Repeats: 5, UltracapF: size})
			if err != nil {
				return sim.Result{}, fmt.Errorf("table1 %.0fF/%s: %w", size, meth, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out.Results = make([][]sim.Result, len(out.SizesF))
	for i := range out.Results {
		out.Results[i] = flat[i*m : (i+1)*m : (i+1)*m]
	}
	// Normalisation: parallel at 25 kF.
	out.BaselineLoss = out.Results[len(out.SizesF)-1][0].QlossPct
	return out, nil
}

// LossPct returns the normalised capacity loss (percent of parallel@25 kF)
// for row i, column j.
func (r *TableIResult) LossPct(i, j int) float64 {
	return 100 * r.Results[i][j].QlossPct / r.BaselineLoss
}

// Write renders the table in the paper's layout.
func (r *TableIResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table I — Influence of ultracapacitor size, US06 ×5")
	fmt.Fprintf(w, "%-10s |", "Size (F)")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %12s", m+" P̄(W)")
	}
	fmt.Fprint(w, " |")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %12s", m+" Q(%)")
	}
	fmt.Fprintln(w)
	for i, size := range r.SizesF {
		fmt.Fprintf(w, "%-10.0f |", size)
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %12.0f", r.Results[i][j].AvgPowerW)
		}
		fmt.Fprint(w, " |")
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %12.2f", r.LossPct(i, j))
		}
		fmt.Fprintln(w)
	}
}
