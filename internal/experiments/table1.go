package experiments

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// TableIResult reproduces the paper's Table I: average power and capacity
// loss for ultracapacitor sizes {5, 10, 20, 25} kF under the Parallel, Dual
// and OTEM methodologies on US06 ×5. Capacity losses are normalised to the
// parallel architecture at 25 kF (= 100 %), as in the paper.
type TableIResult struct {
	// SizesF are the swept bank sizes in farads (rows).
	SizesF []float64
	// MethodsList are the compared methodologies (columns).
	MethodsList []string
	// Results[i][j] is the run at SizesF[i] under MethodsList[j].
	Results [][]sim.Result
	// BaselineLoss is the parallel@25 kF capacity loss used for the 100 %
	// normalisation.
	BaselineLoss float64
}

// TableI runs the sizing sweep (12 simulations, 4 of them MPC).
func TableI() (*TableIResult, error) {
	out := &TableIResult{
		SizesF:      []float64{5000, 10000, 20000, 25000},
		MethodsList: []string{MethodParallel, MethodDual, MethodOTEM},
	}
	for _, size := range out.SizesF {
		row := make([]sim.Result, 0, len(out.MethodsList))
		for _, m := range out.MethodsList {
			res, err := Run(RunSpec{Method: m, Cycle: "US06", Repeats: 5, UltracapF: size})
			if err != nil {
				return nil, fmt.Errorf("table1 %.0fF/%s: %w", size, m, err)
			}
			row = append(row, res)
		}
		out.Results = append(out.Results, row)
	}
	// Normalisation: parallel at 25 kF.
	out.BaselineLoss = out.Results[len(out.SizesF)-1][0].QlossPct
	return out, nil
}

// LossPct returns the normalised capacity loss (percent of parallel@25 kF)
// for row i, column j.
func (r *TableIResult) LossPct(i, j int) float64 {
	return 100 * r.Results[i][j].QlossPct / r.BaselineLoss
}

// Write renders the table in the paper's layout.
func (r *TableIResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table I — Influence of ultracapacitor size, US06 ×5")
	fmt.Fprintf(w, "%-10s |", "Size (F)")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %12s", m+" P̄(W)")
	}
	fmt.Fprint(w, " |")
	for _, m := range r.MethodsList {
		fmt.Fprintf(w, " %12s", m+" Q(%)")
	}
	fmt.Fprintln(w)
	for i, size := range r.SizesF {
		fmt.Fprintf(w, "%-10.0f |", size)
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %12.0f", r.Results[i][j].AvgPowerW)
		}
		fmt.Fprint(w, " |")
		for j := range r.MethodsList {
			fmt.Fprintf(w, " %12.2f", r.LossPct(i, j))
		}
		fmt.Fprintln(w)
	}
}
