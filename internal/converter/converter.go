// Package converter models the DC/DC converters of the hybrid HEES
// architecture (paper §II-C): each storage is coupled to the DC bus through
// a converter whose efficiency η_DC degrades as the storage-side voltage
// drops — the key reason overusing the ultracapacitor (deep SoE swings)
// costs energy, which the OTEM controller must weigh.
//
// Power flows are expressed at the bus side, discharge positive: a positive
// bus power means the storage delivers power to the bus.
package converter

import (
	"fmt"

	"repro/internal/units"
)

// Params describes one DC/DC converter.
type Params struct {
	// PeakEfficiency is the conversion efficiency at (or above) the nominal
	// input voltage, in (0, 1].
	PeakEfficiency float64
	// MinEfficiency floors the efficiency at deep voltage sag, in (0, 1].
	MinEfficiency float64
	// NominalVoltage is the storage-side voltage at which the converter is
	// most efficient, in volts.
	NominalVoltage float64
	// Droop is the efficiency lost per unit of relative voltage sag: at
	// storage voltage V, η = PeakEfficiency − Droop·(1 − V/NominalVoltage),
	// clamped to [MinEfficiency, PeakEfficiency].
	Droop float64
	// IdleLoss is a constant housekeeping loss in watts drawn whenever the
	// converter is enabled, independent of transferred power.
	IdleLoss float64
}

// Default returns a converter typical of automotive HEES designs
// (Choi/Chang-style voltage-aware efficiency model, peak 97 %).
func Default(nominalVoltage float64) Params {
	return Params{
		PeakEfficiency: 0.97,
		MinEfficiency:  0.80,
		NominalVoltage: nominalVoltage,
		Droop:          0.25,
		IdleLoss:       0,
	}
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.PeakEfficiency <= 0 || p.PeakEfficiency > 1:
		return fmt.Errorf("converter: PeakEfficiency = %g, must be in (0, 1]", p.PeakEfficiency)
	case p.MinEfficiency <= 0 || p.MinEfficiency > p.PeakEfficiency:
		return fmt.Errorf("converter: MinEfficiency = %g, must be in (0, PeakEfficiency]", p.MinEfficiency)
	case p.NominalVoltage <= 0:
		return fmt.Errorf("converter: NominalVoltage = %g, must be > 0", p.NominalVoltage)
	case p.Droop < 0:
		return fmt.Errorf("converter: Droop = %g, must be >= 0", p.Droop)
	case p.IdleLoss < 0:
		return fmt.Errorf("converter: IdleLoss = %g, must be >= 0", p.IdleLoss)
	}
	return nil
}

// Efficiency returns η_DC at the given storage-side voltage.
func (p Params) Efficiency(storageVoltage float64) float64 {
	sag := 1 - storageVoltage/p.NominalVoltage
	if sag < 0 {
		sag = 0
	}
	return units.Clamp(p.PeakEfficiency-p.Droop*sag, p.MinEfficiency, p.PeakEfficiency)
}

// StoragePower converts a bus-side power request into the power that must be
// drawn from (or pushed into) the storage, at the given storage voltage:
//
//	busPower > 0 (discharge): storage supplies busPower/η — the storage
//	works harder than the bus sees.
//	busPower < 0 (charge): storage receives busPower·η — some of the bus
//	energy is lost before it reaches the storage.
//
// The idle loss is charged to the storage side.
func (p Params) StoragePower(busPower, storageVoltage float64) float64 {
	eta := p.Efficiency(storageVoltage)
	var sp float64
	if busPower >= 0 {
		sp = busPower / eta
	} else {
		sp = busPower * eta
	}
	return sp + p.IdleLoss
}

// BusPower is the inverse view: given a storage-side power (discharge
// positive), the power seen at the bus.
func (p Params) BusPower(storagePower, storageVoltage float64) float64 {
	eta := p.Efficiency(storageVoltage)
	storagePower -= p.IdleLoss
	if storagePower >= 0 {
		return storagePower * eta
	}
	return storagePower / eta
}

// Loss returns the power dissipated in the converter for a bus-side power at
// the given storage voltage, in watts (always ≥ 0 for IdleLoss ≥ 0).
//
// In both directions the dissipation is storagePower − busPower: when
// discharging the storage supplies more than the bus receives; when charging
// the storage receives less (a smaller negative) than the bus supplies.
func (p Params) Loss(busPower, storageVoltage float64) float64 {
	return p.StoragePower(busPower, storageVoltage) - busPower
}
