package converter

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default(390).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"efficiency > 1", func(p *Params) { p.PeakEfficiency = 1.1 }},
		{"zero efficiency", func(p *Params) { p.PeakEfficiency = 0 }},
		{"min above peak", func(p *Params) { p.MinEfficiency = 0.99 }},
		{"zero nominal voltage", func(p *Params) { p.NominalVoltage = 0 }},
		{"negative droop", func(p *Params) { p.Droop = -1 }},
		{"negative idle loss", func(p *Params) { p.IdleLoss = -1 }},
	}
	for _, m := range mutations {
		p := Default(390)
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestEfficiencyDroopsWithVoltage(t *testing.T) {
	p := Default(390)
	atNom := p.Efficiency(390)
	if atNom != p.PeakEfficiency {
		t.Errorf("Efficiency at nominal = %v, want %v", atNom, p.PeakEfficiency)
	}
	// Above nominal: no bonus.
	if p.Efficiency(450) != p.PeakEfficiency {
		t.Error("efficiency should cap at peak above nominal voltage")
	}
	half := p.Efficiency(195) // 50 % sag → 0.97 − 0.25·0.5 = 0.845
	if math.Abs(half-0.845) > 1e-12 {
		t.Errorf("Efficiency at half voltage = %v, want 0.845", half)
	}
	// Deep sag floors at MinEfficiency.
	if got := p.Efficiency(10); got != p.MinEfficiency {
		t.Errorf("Efficiency at deep sag = %v, want floor %v", got, p.MinEfficiency)
	}
}

func TestStoragePowerDischarge(t *testing.T) {
	p := Default(390)
	sp := p.StoragePower(97e3, 390)
	if math.Abs(sp-1e5) > 1e-6 {
		t.Errorf("StoragePower(97 kW) = %v, want 100 kW", sp)
	}
}

func TestStoragePowerCharge(t *testing.T) {
	p := Default(390)
	sp := p.StoragePower(-100e3, 390)
	if math.Abs(sp-(-97e3)) > 1e-6 {
		t.Errorf("StoragePower(-100 kW) = %v, want -97 kW", sp)
	}
}

func TestBusPowerInverse(t *testing.T) {
	p := Default(390)
	f := func(busKW, v float64) bool {
		bus := math.Mod(busKW, 100) * 1e3
		volt := 100 + math.Abs(math.Mod(v, 300))
		if math.IsNaN(bus) || math.IsNaN(volt) {
			return true
		}
		sp := p.StoragePower(bus, volt)
		back := p.BusPower(sp, volt)
		return math.Abs(back-bus) < 1e-6*(1+math.Abs(bus))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLossNonNegative(t *testing.T) {
	p := Default(390)
	for _, bus := range []float64{-80e3, -1, 0, 1, 50e3} {
		for _, v := range []float64{50.0, 200, 390, 500} {
			if loss := p.Loss(bus, v); loss < 0 {
				t.Errorf("Loss(%v, %v) = %v < 0", bus, v, loss)
			}
		}
	}
}

func TestLossValueDischarge(t *testing.T) {
	p := Default(390)
	// 97 kW at bus needs 100 kW from storage → 3 kW loss.
	if got := p.Loss(97e3, 390); math.Abs(got-3e3) > 1e-6 {
		t.Errorf("Loss = %v, want 3 kW", got)
	}
}

func TestLossValueCharge(t *testing.T) {
	p := Default(390)
	// Bus pushes 100 kW, storage receives 97 kW → 3 kW loss.
	if got := p.Loss(-100e3, 390); math.Abs(got-3e3) > 1e-6 {
		t.Errorf("Loss = %v, want 3 kW", got)
	}
}

func TestIdleLossCharged(t *testing.T) {
	p := Default(390)
	p.IdleLoss = 50
	if got := p.StoragePower(0, 390); got != 50 {
		t.Errorf("StoragePower(0) with idle = %v, want 50", got)
	}
	if got := p.Loss(0, 390); got != 50 {
		t.Errorf("Loss(0) with idle = %v, want 50", got)
	}
}

func TestEfficiencyMonotoneInVoltage(t *testing.T) {
	p := Default(390)
	f := func(a, b float64) bool {
		va, vb := math.Abs(math.Mod(a, 500)), math.Abs(math.Mod(b, 500))
		if math.IsNaN(va) || math.IsNaN(vb) {
			return true
		}
		lo, hi := math.Min(va, vb), math.Max(va, vb)
		return p.Efficiency(lo) <= p.Efficiency(hi)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
