// Package fit identifies the battery-model coefficients of paper Eqs. 2–3
// from measurement data — the "empirically measured for each specific
// battery type" step the paper cites to datasheets. Given rest open-circuit
// voltage samples and pulse-resistance samples versus state of charge, it
// recovers:
//
//	Voc(z) = v₁·e^{v₂·z} + v₃·z⁴ + v₄·z³ + v₅·z² + v₆·z + v₇
//	R(z)   = r₁·e^{r₂·z} + r₃
//
// Each model is linear in all coefficients except the exponential rate
// (v₂ / r₂), so the fit is separable: a 1-D golden-section search over the
// rate with an inner linear least-squares solve (normal equations) for the
// remaining coefficients.
package fit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/linalg"
)

// ErrBadData is returned for empty or mismatched sample sets.
var ErrBadData = errors.New("fit: invalid sample data")

// OCVResult is a fitted open-circuit-voltage model.
type OCVResult struct {
	// V holds the Eq. 2 coefficients in the battery.CellParams layout.
	V [7]float64
	// RMSE is the root-mean-square voltage residual over the samples.
	RMSE float64
}

// Eval evaluates the fitted model at state of charge z.
func (r OCVResult) Eval(z float64) float64 {
	z2 := z * z
	return r.V[0]*math.Exp(r.V[1]*z) + r.V[2]*z2*z2 + r.V[3]*z2*z + r.V[4]*z2 + r.V[5]*z + r.V[6]
}

// OCV fits Eq. 2 to (z, voc) samples. At least 8 samples spanning the SoC
// range are required (7 coefficients).
func OCV(z, voc []float64) (OCVResult, error) {
	if len(z) != len(voc) || len(z) < 8 {
		return OCVResult{}, fmt.Errorf("%w: %d/%d OCV samples (need ≥8, matched)", ErrBadData, len(z), len(voc))
	}
	// Inner solve for a fixed exponential rate k.
	solve := func(k float64) (OCVResult, float64) {
		a := linalg.NewMatrix(len(z), 6)
		b := make(linalg.Vector, len(z))
		for i, zi := range z {
			z2 := zi * zi
			a.Set(i, 0, math.Exp(k*zi))
			a.Set(i, 1, z2*z2)
			a.Set(i, 2, z2*zi)
			a.Set(i, 3, z2)
			a.Set(i, 4, zi)
			a.Set(i, 5, 1)
			b[i] = voc[i]
		}
		coef, err := linalg.LeastSquares(a, b)
		if err != nil {
			return OCVResult{}, math.Inf(1)
		}
		res := OCVResult{V: [7]float64{coef[0], k, coef[1], coef[2], coef[3], coef[4], coef[5]}}
		var sse float64
		for i, zi := range z {
			d := res.Eval(zi) - voc[i]
			sse += d * d
		}
		return res, sse
	}
	// Golden-section search over the (negative) exponential rate; the
	// Chen–Rincón-Mora family has k in roughly [−60, −5].
	k, _ := goldenMin(func(k float64) float64 {
		_, s := solve(k)
		return s
	}, -60, -5, 1e-3)
	best, bestSSE := solve(k)
	best.RMSE = math.Sqrt(bestSSE / float64(len(z)))
	return best, nil
}

// ResistanceResult is a fitted internal-resistance model.
type ResistanceResult struct {
	// R holds the Eq. 3 coefficients in the battery.CellParams layout.
	R [3]float64
	// RMSE is the root-mean-square resistance residual, ohms.
	RMSE float64
}

// Eval evaluates the fitted model at state of charge z.
func (r ResistanceResult) Eval(z float64) float64 {
	return r.R[0]*math.Exp(r.R[1]*z) + r.R[2]
}

// Resistance fits Eq. 3 to (z, resistance) samples (≥ 4 samples).
func Resistance(z, res []float64) (ResistanceResult, error) {
	if len(z) != len(res) || len(z) < 4 {
		return ResistanceResult{}, fmt.Errorf("%w: %d/%d resistance samples (need ≥4, matched)", ErrBadData, len(z), len(res))
	}
	solve := func(k float64) (ResistanceResult, float64) {
		a := linalg.NewMatrix(len(z), 2)
		b := make(linalg.Vector, len(z))
		for i, zi := range z {
			a.Set(i, 0, math.Exp(k*zi))
			a.Set(i, 1, 1)
			b[i] = res[i]
		}
		coef, err := linalg.LeastSquares(a, b)
		if err != nil {
			return ResistanceResult{}, math.Inf(1)
		}
		out := ResistanceResult{R: [3]float64{coef[0], k, coef[1]}}
		var sse float64
		for i, zi := range z {
			d := out.Eval(zi) - res[i]
			sse += d * d
		}
		return out, sse
	}
	k, _ := goldenMin(func(k float64) float64 {
		_, s := solve(k)
		return s
	}, -60, -2, 1e-3)
	best, sse := solve(k)
	best.RMSE = math.Sqrt(sse / float64(len(z)))
	return best, nil
}

// IdentifyCell fits both models and folds them into a copy of base (other
// parameters — thermal, aging, limits — are not identifiable from these
// measurements and are kept).
func IdentifyCell(base battery.CellParams, z, voc, res []float64) (battery.CellParams, error) {
	ov, err := OCV(z, voc)
	if err != nil {
		return battery.CellParams{}, err
	}
	rv, err := Resistance(z, res)
	if err != nil {
		return battery.CellParams{}, err
	}
	out := base
	out.V = ov.V
	out.R = rv.R
	return out, out.Validate()
}

// goldenMin minimises a unimodal scalar function on [lo, hi] to the given
// tolerance via golden-section search, returning the argmin and minimum.
func goldenMin(f func(float64) float64, lo, hi, tol float64) (float64, float64) {
	const phi = 0.6180339887498949 // (√5−1)/2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	x := (a + b) / 2
	return x, f(x)
}
