package fit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/battery"
)

// sampleCell generates (z, Voc, R) measurement data from the reference cell
// with optional Gaussian noise.
func sampleCell(n int, noiseV, noiseR float64, seed int64) (z, voc, res []float64) {
	p := battery.NCR18650A()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		zi := 0.02 + 0.96*float64(i)/float64(n-1)
		z = append(z, zi)
		voc = append(voc, p.OCV(zi)+noiseV*rng.NormFloat64())
		res = append(res, p.Resistance(zi, p.RefTemp)+noiseR*rng.NormFloat64())
	}
	return z, voc, res
}

func TestOCVRecoversNoiseFree(t *testing.T) {
	z, voc, _ := sampleCell(60, 0, 0, 1)
	got, err := OCV(z, voc)
	if err != nil {
		t.Fatal(err)
	}
	if got.RMSE > 1e-4 {
		t.Errorf("noise-free OCV RMSE = %v V", got.RMSE)
	}
	// The fitted curve must reproduce the truth across the range,
	// including points between samples.
	p := battery.NCR18650A()
	for zi := 0.05; zi < 1; zi += 0.013 {
		if d := math.Abs(got.Eval(zi) - p.OCV(zi)); d > 2e-3 {
			t.Errorf("OCV fit off by %v V at z=%v", d, zi)
		}
	}
}

func TestOCVRecoversUnderNoise(t *testing.T) {
	z, voc, _ := sampleCell(200, 0.005, 0, 2) // 5 mV sensor noise
	got, err := OCV(z, voc)
	if err != nil {
		t.Fatal(err)
	}
	p := battery.NCR18650A()
	var worst float64
	for zi := 0.1; zi < 1; zi += 0.01 {
		if d := math.Abs(got.Eval(zi) - p.OCV(zi)); d > worst {
			worst = d
		}
	}
	if worst > 0.01 {
		t.Errorf("noisy OCV fit worst error = %v V, want < 10 mV", worst)
	}
}

func TestResistanceRecovers(t *testing.T) {
	z, _, res := sampleCell(60, 0, 0, 3)
	got, err := Resistance(z, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.RMSE > 1e-6 {
		t.Errorf("noise-free R RMSE = %v Ω", got.RMSE)
	}
	p := battery.NCR18650A()
	for zi := 0.05; zi < 1; zi += 0.017 {
		truth := p.Resistance(zi, p.RefTemp)
		if d := math.Abs(got.Eval(zi) - truth); d > 1e-4 {
			t.Errorf("R fit off by %v Ω at z=%v", d, zi)
		}
	}
}

func TestResistanceUnderNoise(t *testing.T) {
	z, _, res := sampleCell(200, 0, 5e-4, 4) // 0.5 mΩ measurement noise
	got, err := Resistance(z, res)
	if err != nil {
		t.Fatal(err)
	}
	p := battery.NCR18650A()
	// Mid-range accuracy matters most for control.
	for _, zi := range []float64{0.3, 0.5, 0.7, 0.9} {
		truth := p.Resistance(zi, p.RefTemp)
		if d := math.Abs(got.Eval(zi) - truth); d > 5e-4 {
			t.Errorf("noisy R fit off by %v Ω at z=%v", d, zi)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := OCV([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few OCV samples accepted")
	}
	if _, err := OCV([]float64{1, 2, 3}, []float64{1}); err == nil {
		t.Error("mismatched OCV samples accepted")
	}
	if _, err := Resistance([]float64{1}, []float64{1}); err == nil {
		t.Error("too few R samples accepted")
	}
}

func TestIdentifyCellRoundTrip(t *testing.T) {
	z, voc, res := sampleCell(100, 0.002, 2e-4, 5)
	base := battery.NCR18650A()
	got, err := IdentifyCell(base, z, voc, res)
	if err != nil {
		t.Fatal(err)
	}
	// The identified cell must behave like the original: same OCV and
	// resistance within tight tolerances, and unchanged non-electrical
	// parameters.
	for _, zi := range []float64{0.2, 0.5, 0.8} {
		if d := math.Abs(got.OCV(zi) - base.OCV(zi)); d > 0.01 {
			t.Errorf("identified OCV off by %v at z=%v", d, zi)
		}
		if d := math.Abs(got.Resistance(zi, base.RefTemp) - base.Resistance(zi, base.RefTemp)); d > 5e-4 {
			t.Errorf("identified R off by %v at z=%v", d, zi)
		}
	}
	if got.CapacityAh != base.CapacityAh || got.SafeTemp != base.SafeTemp {
		t.Error("non-electrical parameters mutated")
	}
}

func TestGoldenMinFindsParabolaMinimum(t *testing.T) {
	x, fx := goldenMin(func(x float64) float64 { return (x + 3) * (x + 3) }, -10, 10, 1e-6)
	if math.Abs(x+3) > 1e-4 {
		t.Errorf("argmin = %v, want -3", x)
	}
	if fx > 1e-8 {
		t.Errorf("min = %v, want ~0", fx)
	}
}
