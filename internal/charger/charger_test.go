package charger

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/cooling"
	"repro/internal/units"
)

func setup(t *testing.T, soc float64) (*battery.Pack, *cooling.Loop) {
	t.Helper()
	pack, err := battery.NewPack(battery.NCR18650A(), 96, 24, soc, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	loop, err := cooling.NewLoop(cooling.DefaultParams(), units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	return pack, loop
}

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero c-rate", func(p *Params) { p.CRate = 0 }},
		{"zero vmax", func(p *Params) { p.VmaxPerCell = 0 }},
		{"cutoff above c-rate", func(p *Params) { p.CutoffCRate = 1 }},
		{"efficiency > 1", func(p *Params) { p.Efficiency = 1.1 }},
		{"zero duration", func(p *Params) { p.MaxDuration = 0 }},
	}
	for _, m := range mutations {
		p := Default()
		m.mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestChargeReachesTarget(t *testing.T) {
	pack, loop := setup(t, 0.4)
	res, err := Charge(pack, loop, Default(), 0.95, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pack.SoC-0.95) > 0.01 {
		t.Errorf("final SoC = %v, want ≈0.95", pack.SoC)
	}
	if res.FinalSoC != pack.SoC {
		t.Error("result SoC mismatch")
	}
	// 0.55 of a 27 kWh pack at 92 % efficiency ≈ 57 MJ wall.
	wantWall := 0.55 * 97e6 / 0.92
	if res.WallEnergyJ < wantWall*0.85 || res.WallEnergyJ > wantWall*1.25 {
		t.Errorf("wall energy = %.1f MJ, want ≈%.1f MJ", res.WallEnergyJ/1e6, wantWall/1e6)
	}
	// At 0.5 C the session takes roughly 1.1–2 h.
	if res.Duration < 3000 || res.Duration > 8000 {
		t.Errorf("duration = %v s", res.Duration)
	}
	if res.AgingPct <= 0 {
		t.Error("charging must age the battery")
	}
	// Endothermic charging: the pack must not have heated.
	if res.PeakTempK > units.CToK(25)+0.1 {
		t.Errorf("0.5 C charging heated the pack to %v", res.PeakTempK)
	}
}

func TestChargeEntersCVPhaseNearFull(t *testing.T) {
	pack, loop := setup(t, 0.9)
	res, err := Charge(pack, loop, Default(), 1.0, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CVPhase {
		t.Error("charging to full must reach the constant-voltage taper")
	}
	// The taper cuts off before literally 100 %.
	if pack.SoC < 0.95 {
		t.Errorf("final SoC = %v, want near full", pack.SoC)
	}
}

func TestChargeNoopWhenAboveTarget(t *testing.T) {
	pack, loop := setup(t, 0.8)
	res, err := Charge(pack, loop, Default(), 0.5, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 0 || res.WallEnergyJ != 0 {
		t.Errorf("no-op charge did work: %+v", res)
	}
	if pack.SoC != 0.8 {
		t.Error("pack mutated")
	}
}

func TestChargeValidation(t *testing.T) {
	pack, loop := setup(t, 0.5)
	if _, err := Charge(nil, loop, Default(), 0.9, 298); err == nil {
		t.Error("nil pack accepted")
	}
	if _, err := Charge(pack, nil, Default(), 0.9, 298); err == nil {
		t.Error("nil loop accepted")
	}
	if _, err := Charge(pack, loop, Default(), 1.5, 298); err == nil {
		t.Error("target > 1 accepted")
	}
	bad := Default()
	bad.CRate = -1
	if _, err := Charge(pack, loop, bad, 0.9, 298); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFasterChargeAgesMore(t *testing.T) {
	slow := Default()
	slow.CRate = 0.3
	fast := Default()
	fast.CRate = 2.0

	packS, loopS := setup(t, 0.3)
	resS, err := Charge(packS, loopS, slow, 0.9, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	packF, loopF := setup(t, 0.3)
	resF, err := Charge(packF, loopF, fast, 0.9, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if resF.Duration >= resS.Duration {
		t.Error("fast charge should be quicker")
	}
	if resF.AgingPct <= resS.AgingPct {
		t.Errorf("fast charge aging %v should exceed slow %v", resF.AgingPct, resS.AgingPct)
	}
	// With the positive entropy coefficient, moderate-rate charging is net
	// endothermic (the Joule term only dominates above ≈3 C), so neither
	// session heats the pack above its starting temperature.
	if resF.PeakTempK > units.CToK(25)+0.1 || resS.PeakTempK > units.CToK(25)+0.1 {
		t.Errorf("sub-3C charging should not heat the pack: fast %v, slow %v",
			resF.PeakTempK, resS.PeakTempK)
	}
}

func TestChargeRespectsMaxDuration(t *testing.T) {
	p := Default()
	p.CRate = 0.05001 // barely above the cutoff — glacial
	p.CutoffCRate = 0.05
	p.MaxDuration = 600
	pack, loop := setup(t, 0.2)
	res, err := Charge(pack, loop, p, 1.0, units.CToK(25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > 600 {
		t.Errorf("duration %v exceeded MaxDuration", res.Duration)
	}
	if pack.SoC >= 1.0 {
		t.Error("glacial charge cannot have finished")
	}
}
