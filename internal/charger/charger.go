// Package charger models the CC-CV charging protocol that refills the pack
// between routes: constant current until the per-cell voltage limit, then
// constant voltage with tapering current until the cutoff. Charging
// stresses the battery too (Eq. 5 integrates |I| regardless of sign), so
// lifetime projections that ignore it overestimate battery life — this
// package closes that gap.
package charger

import (
	"errors"
	"fmt"

	"repro/internal/battery"
	"repro/internal/cooling"
)

// Params describes the charger.
type Params struct {
	// CRate is the constant-current phase rate in 1/h (0.5 = half the
	// pack's amp-hour rating).
	CRate float64
	// VmaxPerCell is the per-cell voltage ceiling, volts. The equivalent-
	// circuit OCV fit used by the battery model tops out near 4.10 V at full charge, so
	// the matching CV threshold is slightly below the datasheet's 4.2 V.
	VmaxPerCell float64
	// CutoffCRate ends the constant-voltage taper, in 1/h.
	CutoffCRate float64
	// Efficiency is the wall-to-pack conversion efficiency in (0, 1].
	Efficiency float64
	// MaxDuration bounds a charge session, seconds.
	MaxDuration float64
}

// Default returns a typical home AC charger (0.5 C, C/20 cutoff).
func Default() Params {
	return Params{
		CRate:       0.5,
		VmaxPerCell: 4.09,
		CutoffCRate: 0.05,
		Efficiency:  0.92,
		MaxDuration: 8 * 3600,
	}
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.CRate <= 0:
		return fmt.Errorf("charger: CRate = %g, must be > 0", p.CRate)
	case p.VmaxPerCell <= 0:
		return fmt.Errorf("charger: VmaxPerCell = %g, must be > 0", p.VmaxPerCell)
	case p.CutoffCRate <= 0 || p.CutoffCRate >= p.CRate:
		return fmt.Errorf("charger: CutoffCRate = %g, must be in (0, CRate)", p.CutoffCRate)
	case p.Efficiency <= 0 || p.Efficiency > 1:
		return fmt.Errorf("charger: Efficiency = %g, must be in (0, 1]", p.Efficiency)
	case p.MaxDuration <= 0:
		return fmt.Errorf("charger: MaxDuration = %g, must be > 0", p.MaxDuration)
	}
	return nil
}

// Result summarises one charging session.
type Result struct {
	// Duration is the session length, seconds.
	Duration float64
	// WallEnergyJ is the energy drawn from the grid, joules.
	WallEnergyJ float64
	// AgingPct is the capacity loss accumulated while charging.
	AgingPct float64
	// PeakTempK is the highest battery temperature reached.
	PeakTempK float64
	// FinalSoC is the state of charge at the end.
	FinalSoC float64
	// CVPhase reports whether the constant-voltage taper was reached.
	CVPhase bool
}

// Charge refills the pack to targetSoC with the CC-CV protocol, advancing
// the passive thermal loop (the car is parked; the pump is off) at the
// given ambient. The pack and loop are mutated in place.
func Charge(pack *battery.Pack, loop *cooling.Loop, p Params, targetSoC, ambient float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if pack == nil || loop == nil {
		return Result{}, errors.New("charger: nil pack or loop")
	}
	if targetSoC <= pack.SoC {
		return Result{FinalSoC: pack.SoC, PeakTempK: loop.BatteryTemp}, nil
	}
	if targetSoC > 1 {
		return Result{}, fmt.Errorf("charger: target SoC %g > 1", targetSoC)
	}

	const dt = 10.0 // charging dynamics are slow; 10 s steps suffice
	iCC := p.CRate * pack.CapacityAh()
	iCutoff := p.CutoffCRate * pack.CapacityAh()
	vMax := p.VmaxPerCell * float64(pack.Series)

	var out Result
	out.PeakTempK = loop.BatteryTemp
	for out.Duration < p.MaxDuration && pack.SoC < targetSoC {
		pack.Temp = loop.BatteryTemp
		// Pick the phase: CC until the terminal voltage would exceed vMax.
		i := -iCC // charging current (negative by pack convention)
		if vTerm := pack.OCV() - i*pack.Resistance(); vTerm >= vMax {
			// CV: hold the terminal at vMax → I = (Voc − Vmax)/R (< 0).
			i = (pack.OCV() - vMax) / pack.Resistance()
			out.CVPhase = true
			if -i < iCutoff {
				break
			}
		}
		res, err := pack.StepCurrent(i, dt)
		if err != nil {
			return out, err
		}
		if _, err := loop.StepPassive(res.HeatRate, ambient, dt); err != nil {
			return out, err
		}
		out.Duration += dt
		out.AgingPct += res.AgingPct
		// Wall energy: the pack absorbs |chemical energy|; the charger adds
		// its conversion loss.
		out.WallEnergyJ += -res.ChemicalEnergy / p.Efficiency
		if loop.BatteryTemp > out.PeakTempK {
			out.PeakTempK = loop.BatteryTemp
		}
	}
	out.FinalSoC = pack.SoC
	return out, nil
}
