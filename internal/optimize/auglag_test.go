package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAugLagCircleConstraint(t *testing.T) {
	// Minimise (x-2)² + (y-2)² s.t. x² + y² ≤ 1.
	// Solution: the boundary point (1/√2, 1/√2).
	p := &Problem{Dim: 2, Func: quadratic([]float64{2, 2})}
	cons := []Constraint{{
		Name: "unit-circle",
		Func: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] - 1 },
	}}
	r, err := MinimizeAugLag(p, cons, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt2
	if math.Abs(r.X[0]-want) > 1e-3 || math.Abs(r.X[1]-want) > 1e-3 {
		t.Errorf("X = %v, want (%v, %v)", r.X, want, want)
	}
	if r.MaxViolation > 1e-4 {
		t.Errorf("MaxViolation = %v", r.MaxViolation)
	}
}

func TestAugLagInactiveConstraint(t *testing.T) {
	// Constraint not binding: behaves like the unconstrained problem.
	p := &Problem{Dim: 2, Func: quadratic([]float64{0.1, 0.1})}
	cons := []Constraint{{
		Func: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] - 100 },
	}}
	r, err := MinimizeAugLag(p, cons, []float64{3, -3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-0.1) > 1e-4 || math.Abs(r.X[1]-0.1) > 1e-4 {
		t.Errorf("X = %v, want (0.1, 0.1)", r.X)
	}
	if r.Multipliers[0] > 1e-6 {
		t.Errorf("multiplier for inactive constraint = %v, want 0", r.Multipliers[0])
	}
}

func TestAugLagLinearConstraintWithBox(t *testing.T) {
	// Minimise (x+1)² + (y+1)² s.t. x + y ≥ 1 (i.e. 1-x-y ≤ 0), 0 ≤ x,y ≤ 5.
	// Solution: x = y = 0.5.
	p := &Problem{
		Dim:   2,
		Func:  quadratic([]float64{-1, -1}),
		Lower: []float64{0, 0},
		Upper: []float64{5, 5},
	}
	cons := []Constraint{{
		Func: func(x []float64) float64 { return 1 - x[0] - x[1] },
	}}
	r, err := MinimizeAugLag(p, cons, []float64{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-0.5) > 1e-3 || math.Abs(r.X[1]-0.5) > 1e-3 {
		t.Errorf("X = %v, want (0.5, 0.5)", r.X)
	}
}

func TestAugLagValidation(t *testing.T) {
	p := &Problem{Dim: 1, Func: quadratic([]float64{0})}
	if _, err := MinimizeAugLag(p, []Constraint{{Func: nil}}, []float64{0}, nil); err == nil {
		t.Error("nil constraint Func accepted")
	}
	if _, err := MinimizeAugLag(&Problem{Dim: 1}, nil, []float64{0}, nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestAugLagNoConstraintsEqualsMinimize(t *testing.T) {
	p := &Problem{Dim: 2, Func: quadratic([]float64{4, -4})}
	r, err := MinimizeAugLag(p, nil, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-4) > 1e-4 || math.Abs(r.X[1]+4) > 1e-4 {
		t.Errorf("X = %v, want (4, -4)", r.X)
	}
}

func TestHingeSquared(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0},
		{0, 0},
		{2, 4},
		{0.5, 0.25},
	}
	for _, tc := range cases {
		if got := HingeSquared(tc.in); got != tc.want {
			t.Errorf("HingeSquared(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestHingeSquaredProperties(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		h := HingeSquared(c)
		if h < 0 {
			return false
		}
		if c <= 0 && h != 0 {
			return false
		}
		if c > 0 && h != c*c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
