package optimize

import (
	"math"
	"testing"
)

// rosenbrockProblem returns the classic banana function with box bounds and
// an analytic gradient toggle.
func rosenbrockProblem(analytic bool) *Problem {
	p := &Problem{
		Dim: 2,
		Func: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Lower: []float64{-2, -2},
		Upper: []float64{2, 2},
	}
	if analytic {
		p.Grad = func(x, g []float64) {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			g[0] = -2*a - 400*b*x[0]
			g[1] = 200 * b
		}
	}
	return p
}

func TestWorkspaceMinimizeMatchesMinimize(t *testing.T) {
	// The workspace-reusing solver must produce bit-identical results to the
	// allocating wrapper, on both the analytic and finite-difference paths,
	// and stay identical across repeated reuse of the same workspace.
	for _, analytic := range []bool{false, true} {
		p := rosenbrockProblem(analytic)
		x0 := []float64{-1.2, 1}
		want, err := Minimize(p, x0, nil)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace()
		for round := 0; round < 3; round++ {
			got, err := ws.Minimize(p, x0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.F != want.F || got.Iterations != want.Iterations ||
				got.FuncEvals != want.FuncEvals || got.Status != want.Status {
				t.Fatalf("analytic=%v round %d: got %+v want %+v", analytic, round, got, *want)
			}
			for i := range want.X {
				if got.X[i] != want.X[i] {
					t.Fatalf("analytic=%v round %d: X[%d] = %v, want %v", analytic, round, i, got.X[i], want.X[i])
				}
			}
		}
	}
}

func TestWorkspaceMinimizeHandlesDimensionChange(t *testing.T) {
	// A workspace reused across problems of different dimensions must match
	// the one-shot solver on each (buffers are views over grow-only backing).
	ws := NewWorkspace()
	for _, dim := range []int{5, 2, 8, 3} {
		center := make([]float64, dim)
		for i := range center {
			center[i] = float64(i) - 1.5
		}
		p := &Problem{Dim: dim, Func: quadratic(center)}
		x0 := make([]float64, dim)
		want, err := Minimize(p, x0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ws.Minimize(p, x0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.F != want.F || got.FuncEvals != want.FuncEvals {
			t.Fatalf("dim %d: got %+v want %+v", dim, got, *want)
		}
	}
}

func TestWorkspaceMinimizeSteadyStateAllocsZero(t *testing.T) {
	// The tentpole contract: a warm workspace performs a whole minimisation
	// without allocating, on both gradient paths.
	for _, analytic := range []bool{false, true} {
		p := rosenbrockProblem(analytic)
		x0 := []float64{-1.2, 1}
		ws := NewWorkspace()
		if _, err := ws.Minimize(p, x0, nil); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := ws.Minimize(p, x0, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("analytic=%v: warm workspace Minimize allocated %.1f times per run, want 0", analytic, allocs)
		}
	}
}

func TestWorkspaceResultAliasesWorkspace(t *testing.T) {
	// Documented contract: Result.X from the workspace form is only valid
	// until the next call — it aliases ws.x.
	ws := NewWorkspace()
	p := rosenbrockProblem(true)
	res, err := ws.Minimize(p, []float64{-1.2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &res.X[0] != &ws.x[0] {
		t.Error("Result.X does not alias the workspace iterate buffer")
	}
}

func TestWorkspaceHistoryRingReusesRows(t *testing.T) {
	// Force enough iterations to wrap the L-BFGS ring (Memory defaults to 8
	// on a 2-dim Rosenbrock run with many iterations) and verify the row
	// storage is drawn from the preallocated pools, not fresh allocations.
	ws := NewWorkspace()
	p := rosenbrockProblem(true)
	if _, err := ws.Minimize(p, []float64{-1.2, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if len(ws.sHist) == 0 {
		t.Fatal("expected non-empty curvature history after a Rosenbrock solve")
	}
	inPool := func(row []float64, pool [][]float64) bool {
		for _, p := range pool {
			if &p[0] == &row[0] {
				return true
			}
		}
		return false
	}
	for i := range ws.sHist {
		if !inPool(ws.sHist[i], ws.sPool) {
			t.Errorf("sHist[%d] is not backed by the workspace pool", i)
		}
		if !inPool(ws.yHist[i], ws.yPool) {
			t.Errorf("yHist[%d] is not backed by the workspace pool", i)
		}
	}
}

func TestWorkspaceGradientMatchesNumericGradient(t *testing.T) {
	// The inlined finite-difference path must agree bit-for-bit with the
	// exported NumericGradient helper.
	p := rosenbrockProblem(false)
	ws := NewWorkspace()
	ws.ensure(p.Dim, 8)
	x := []float64{0.3, -0.7}
	got := make([]float64, 2)
	ws.gradient(p, x, got)
	want := make([]float64, 2)
	fd := append([]float64(nil), x...)
	NumericGradient(p.Func, fd, want)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("grad[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if math.IsNaN(got[0]) {
		t.Fatal("NaN gradient")
	}
}
