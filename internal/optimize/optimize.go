// Package optimize implements the numerical optimisation kernel used by the
// OTEM model-predictive controller: box-constrained quasi-Newton minimisation
// (a projected L-BFGS in the spirit of L-BFGS-B), backtracking line search,
// finite-difference gradients and an augmented-Lagrangian wrapper for
// nonlinear inequality constraints.
//
// The paper solves its MPC problem (Eqs. 18–19) with a MATLAB NLP solver;
// this package is the from-scratch substitute. It is deterministic and
// allocation-conscious so it can run inside every control step of a
// simulation.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// Status describes how a minimisation terminated.
type Status int

const (
	// Converged means the projected-gradient norm dropped below tolerance.
	Converged Status = iota
	// MaxIterationsReached means the iteration budget was exhausted; the
	// best point found so far is returned.
	MaxIterationsReached
	// LineSearchStalled means no further descent could be found; the best
	// point found so far is returned.
	LineSearchStalled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterationsReached:
		return "max iterations reached"
	case LineSearchStalled:
		return "line search stalled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem defines an objective to minimise, optionally with analytic
// gradients and a box constraint l ≤ x ≤ u.
type Problem struct {
	// Dim is the number of decision variables.
	Dim int
	// Func evaluates the objective at x. Required.
	Func func(x []float64) float64
	// Grad writes the gradient of Func at x into grad. Optional; when nil a
	// central finite difference of Func is used.
	Grad func(x, grad []float64)
	// Lower and Upper, when non-nil, bound each variable. A nil slice means
	// unbounded on that side; individual entries may be ±Inf.
	Lower, Upper []float64
}

// Options tunes the minimiser. The zero value selects sensible defaults.
type Options struct {
	// MaxIterations bounds the outer quasi-Newton iterations (default 200).
	MaxIterations int
	// Tolerance is the convergence threshold on the infinity norm of the
	// projected gradient step (default 1e-6).
	Tolerance float64
	// Memory is the number of curvature pairs retained by L-BFGS
	// (default 8).
	Memory int
	// MaxLineSearch bounds backtracking steps per iteration (default 40).
	MaxLineSearch int
}

func (o *Options) withDefaults() Options {
	out := Options{MaxIterations: 200, Tolerance: 1e-6, Memory: 8, MaxLineSearch: 40}
	if o == nil {
		return out
	}
	if o.MaxIterations > 0 {
		out.MaxIterations = o.MaxIterations
	}
	if o.Tolerance > 0 {
		out.Tolerance = o.Tolerance
	}
	if o.Memory > 0 {
		out.Memory = o.Memory
	}
	if o.MaxLineSearch > 0 {
		out.MaxLineSearch = o.MaxLineSearch
	}
	return out
}

// Result reports the outcome of a minimisation.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of outer iterations performed.
	Iterations int
	// FuncEvals counts objective evaluations (including those used for
	// finite-difference gradients).
	FuncEvals int
	// Status describes why iteration stopped.
	Status Status
}

// ErrBadProblem is returned for structurally invalid problems (missing
// objective, dimension mismatch, inconsistent bounds).
var ErrBadProblem = errors.New("optimize: invalid problem definition")

func (p *Problem) validate(x0 []float64) error {
	if p.Func == nil {
		return fmt.Errorf("%w: nil Func", ErrBadProblem)
	}
	if p.Dim <= 0 {
		return fmt.Errorf("%w: Dim = %d", ErrBadProblem, p.Dim)
	}
	if len(x0) != p.Dim {
		return fmt.Errorf("%w: len(x0) = %d, want %d", ErrBadProblem, len(x0), p.Dim)
	}
	if p.Lower != nil && len(p.Lower) != p.Dim {
		return fmt.Errorf("%w: len(Lower) = %d, want %d", ErrBadProblem, len(p.Lower), p.Dim)
	}
	if p.Upper != nil && len(p.Upper) != p.Dim {
		return fmt.Errorf("%w: len(Upper) = %d, want %d", ErrBadProblem, len(p.Upper), p.Dim)
	}
	if p.Lower != nil && p.Upper != nil {
		for i := range p.Lower {
			if p.Lower[i] > p.Upper[i] {
				return fmt.Errorf("%w: Lower[%d]=%g > Upper[%d]=%g", ErrBadProblem, i, p.Lower[i], i, p.Upper[i])
			}
		}
	}
	return nil
}

// project clamps x into the problem's box in place.
func (p *Problem) project(x []float64) {
	if p.Lower != nil {
		for i, lo := range p.Lower {
			if x[i] < lo {
				x[i] = lo
			}
		}
	}
	if p.Upper != nil {
		for i, hi := range p.Upper {
			if x[i] > hi {
				x[i] = hi
			}
		}
	}
}

// Workspace owns every buffer Minimize needs — the iterate, gradient and
// line-search vectors, the finite-difference scratch and the L-BFGS s/y/ρ
// history ring. A caller that keeps a Workspace across invocations (a
// warm-started MPC planner re-solving every control step) pays for the
// buffers once and then minimises without allocating.
//
// A Workspace is not safe for concurrent use: it is single-goroutine state,
// exactly like a bytes.Buffer. Pools of workers (runner.Pool) need one
// Workspace per worker. The zero value is ready to use.
type Workspace struct {
	// dim and mem are the backing capacities; buffers grow monotonically and
	// are resliced per call, so alternating problem sizes never reallocates
	// once the high-water mark is reached.
	dim, mem int

	x, g, dir, xNew, gNew, fdX []float64

	// L-BFGS curvature history: sPool/yPool own the row storage, sHist/yHist
	// are the ordered live views (oldest first), rho the matching 1/sᵀy.
	sPool, yPool [][]float64
	sHist, yHist [][]float64
	rho          []float64
	alpha        []float64

	evals int
}

// NewWorkspace returns an empty workspace. Buffers are allocated lazily on
// the first Minimize call and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the buffers for an n-dimensional problem with memory m and
// resets the per-call state (history, evaluation counter). Buffers grow
// only when the problem outgrows every earlier call, so the makes below
// amortize to zero on a warm workspace.
//
//lint:coldpath buffer growth runs once per problem size; warm calls only reslice
func (ws *Workspace) ensure(n, m int) {
	if n > ws.dim {
		ws.x = make([]float64, n)
		ws.g = make([]float64, n)
		ws.dir = make([]float64, n)
		ws.xNew = make([]float64, n)
		ws.gNew = make([]float64, n)
		ws.fdX = make([]float64, n)
		ws.dim = n
		// Row storage is dimension-dependent; force a pool rebuild.
		ws.mem = 0
	}
	if m > ws.mem {
		ws.sPool = make([][]float64, m)
		ws.yPool = make([][]float64, m)
		for i := range ws.sPool {
			ws.sPool[i] = make([]float64, ws.dim)
			ws.yPool[i] = make([]float64, ws.dim)
		}
		ws.sHist = make([][]float64, 0, m)
		ws.yHist = make([][]float64, 0, m)
		ws.rho = make([]float64, 0, m)
		ws.alpha = make([]float64, m)
		ws.mem = m
	}
	ws.x = ws.x[:n]
	ws.g = ws.g[:n]
	ws.dir = ws.dir[:n]
	ws.xNew = ws.xNew[:n]
	ws.gNew = ws.gNew[:n]
	ws.fdX = ws.fdX[:n]
	ws.alpha = ws.alpha[:m]
	ws.resetHistory()
	ws.evals = 0
}

func (ws *Workspace) resetHistory() {
	ws.sHist = ws.sHist[:0]
	ws.yHist = ws.yHist[:0]
	ws.rho = ws.rho[:0]
}

// value evaluates the objective, counting the call.
func (ws *Workspace) value(p *Problem, x []float64) float64 {
	ws.evals++
	return p.Func(x)
}

// gradient writes ∇f(x) into grad: the analytic gradient when the problem
// has one, otherwise the same central differences as NumericGradient,
// inlined over the workspace scratch so no closure escapes per call.
func (ws *Workspace) gradient(p *Problem, x, grad []float64) {
	if p.Grad != nil {
		p.Grad(x, grad)
		return
	}
	fd := ws.fdX
	copy(fd, x)
	const hBase = 6.055454452393343e-06 // cbrt(2^-52), as in NumericGradient
	for i := range fd {
		xi := fd[i]
		h := hBase * (1 + math.Abs(xi))
		fd[i] = xi + h
		ws.evals++
		fp := p.Func(fd)
		fd[i] = xi - h
		ws.evals++
		fm := p.Func(fd)
		fd[i] = xi
		grad[i] = (fp - fm) / (2 * h)
	}
}

// pushPair appends the curvature pair s = xNew−x, y = gNew−g to the history
// ring when it passes the positive-curvature test, reusing the oldest row
// once the ring is full.
func (ws *Workspace) pushPair(x, xNew, g, gNew []float64) {
	var sy, ss, yy float64
	for i := range x {
		s := xNew[i] - x[i]
		y := gNew[i] - g[i]
		sy += s * y
		ss += s * s
		yy += y * y
	}
	if !(sy > 1e-12*math.Sqrt(ss)*math.Sqrt(yy) && sy > 0) {
		return
	}
	m := len(ws.alpha)
	k := len(ws.sHist)
	var srow, yrow []float64
	if k == m {
		// Full: recycle the oldest row to the back of the ring.
		srow, yrow = ws.sHist[0], ws.yHist[0]
		copy(ws.sHist, ws.sHist[1:])
		copy(ws.yHist, ws.yHist[1:])
		copy(ws.rho, ws.rho[1:])
		ws.sHist[m-1] = srow
		ws.yHist[m-1] = yrow
		ws.rho[m-1] = 1 / sy
	} else {
		srow = ws.sPool[k][:len(x)]
		yrow = ws.yPool[k][:len(x)]
		// Growing: reslice within the capacity ensure reserved — spelled as
		// a reslice rather than append so the allocation-freedom is
		// checkable, not a capacity argument.
		ws.sHist = ws.sHist[:k+1]
		ws.sHist[k] = srow
		ws.yHist = ws.yHist[:k+1]
		ws.yHist[k] = yrow
		ws.rho = ws.rho[:k+1]
		ws.rho[k] = 1 / sy
	}
	for i := range srow {
		srow[i] = xNew[i] - x[i]
		yrow[i] = gNew[i] - g[i]
	}
}

// Minimize finds a local minimiser of p starting at x0 using projected
// L-BFGS. x0 is not modified. The returned Result always carries the best
// point seen, even on MaxIterationsReached or LineSearchStalled.
//
// Minimize allocates a fresh workspace per call; hot paths that re-solve
// repeatedly should hold a Workspace and call its Minimize method instead.
func Minimize(p *Problem, x0 []float64, opts *Options) (*Result, error) {
	var ws Workspace
	res, err := ws.Minimize(p, x0, opts)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Minimize is the workspace-reusing form of the package-level Minimize: the
// same projected L-BFGS, but every buffer comes from the workspace, so a
// warm workspace performs the whole minimisation without allocating.
//
// The returned Result.X aliases workspace storage and is only valid until
// the next call on the same workspace — copy it if it must survive.
//
//lint:hotpath the warm re-solve runs every MPC step; allocflow proves it allocation-free
func (ws *Workspace) Minimize(p *Problem, x0 []float64, opts *Options) (Result, error) {
	if err := p.validate(x0); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	n := p.Dim
	ws.ensure(n, o.Memory)

	x := ws.x
	copy(x, x0)
	p.project(x)
	f := ws.value(p, x)
	g := ws.g
	ws.gradient(p, x, g)

	dir, xNew, gNew := ws.dir, ws.xNew, ws.gNew

	res := Result{X: x, F: f}
	status := MaxIterationsReached

	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Convergence test on the projected gradient step.
		if projectedGradNorm(p, x, g) < o.Tolerance {
			status = Converged
			break
		}

		// Two-loop recursion for d = -H·g, restricted to free variables so
		// bound-active coordinates do not pollute the curvature estimate.
		twoLoop(dir, g, ws.sHist, ws.yHist, ws.rho, ws.alpha)
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Ensure descent; fall back to steepest descent if the quasi-Newton
		// direction is uphill (can happen right after history resets).
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
		}

		// A unit quasi-Newton step is the right default once curvature
		// information exists; before that, scale by the gradient so the
		// first probe is O(1) rather than O(‖g‖).
		alpha0 := 1.0
		if len(ws.sHist) == 0 {
			if gn := normInf(g); gn > 1 {
				alpha0 = 1 / gn
			}
		}
		fNew, ok := ws.lineSearch(p, x, f, g, dir, xNew, o.MaxLineSearch, alpha0)
		if !ok && len(ws.sHist) > 0 {
			// The quasi-Newton model went bad; drop the history and retry
			// with a scaled steepest-descent step.
			ws.resetHistory()
			for i := range dir {
				dir[i] = -g[i]
			}
			if gn := normInf(g); gn > 1 {
				alpha0 = 1 / gn
			} else {
				alpha0 = 1
			}
			fNew, ok = ws.lineSearch(p, x, f, g, dir, xNew, o.MaxLineSearch, alpha0)
		}
		if !ok {
			status = LineSearchStalled
			break
		}
		ws.gradient(p, xNew, gNew)

		// Update curvature history with s = xNew-x, y = gNew-g.
		ws.pushPair(x, xNew, g, gNew)

		copy(x, xNew)
		copy(g, gNew)
		f = fNew
	}

	res.X = x
	res.F = f
	res.FuncEvals = ws.evals
	res.Status = status
	return res, nil
}

// lineSearch performs a projected backtracking Armijo line search along
// dir, writing the accepted point to xNew and returning its value.
func (ws *Workspace) lineSearch(p *Problem, x []float64, f float64, g, dir, xNew []float64, maxSteps int, alpha0 float64) (float64, bool) {
	const c1 = 1e-4
	alpha := alpha0
	gd := dot(g, dir)
	for step := 0; step < maxSteps; step++ {
		for i := range xNew {
			xNew[i] = x[i] + alpha*dir[i]
		}
		p.project(xNew)
		// Effective step after projection.
		var sg float64
		moved := false
		for i := range xNew {
			d := xNew[i] - x[i]
			//lint:ignore floatcompare projection no-op detection must see bit-level movement; an epsilon would stall convergence detection
			if d != 0 {
				moved = true
			}
			sg += d * g[i]
		}
		if !moved {
			return f, false
		}
		fNew := ws.value(p, xNew)
		// Armijo condition on the projected step; fall back to the raw
		// direction slope when projection did not truncate the step.
		slope := sg
		if slope >= 0 {
			slope = alpha * gd
		}
		if fNew <= f+c1*slope && fNew < f {
			return fNew, true
		}
		// Plain decrease acceptance for very small steps avoids stalling on
		// flat, noisy objectives.
		if fNew < f-1e-14*(math.Abs(f)+1) && alpha < 1e-6 {
			return fNew, true
		}
		alpha *= 0.5
	}
	return f, false
}

// twoLoop computes out = H·g using the standard L-BFGS two-loop recursion.
func twoLoop(out, g []float64, s, y [][]float64, rho, alphaBuf []float64) {
	copy(out, g)
	k := len(s)
	if k == 0 {
		return
	}
	alpha := alphaBuf[:k]
	for i := k - 1; i >= 0; i-- {
		alpha[i] = rho[i] * dot(s[i], out)
		axpy(out, -alpha[i], y[i])
	}
	// Initial Hessian scaling γ = sᵀy / yᵀy of the most recent pair.
	gamma := 1.0
	yy := dot(y[k-1], y[k-1])
	if yy > 0 {
		gamma = dot(s[k-1], y[k-1]) / yy
	}
	for i := range out {
		out[i] *= gamma
	}
	for i := 0; i < k; i++ {
		beta := rho[i] * dot(y[i], out)
		axpy(out, alpha[i]-beta, s[i])
	}
}

// projectedGradNorm returns ‖P(x − g) − x‖∞, the standard first-order
// optimality measure for box-constrained problems.
func projectedGradNorm(p *Problem, x, g []float64) float64 {
	var m float64
	for i := range x {
		xi := x[i] - g[i]
		if p.Lower != nil && xi < p.Lower[i] {
			xi = p.Lower[i]
		}
		if p.Upper != nil && xi > p.Upper[i] {
			xi = p.Upper[i]
		}
		if d := math.Abs(xi - x[i]); d > m {
			m = d
		}
	}
	return m
}

// NumericGradient writes a central-difference approximation of the gradient
// of f at x into grad. x is used as scratch but restored before returning.
func NumericGradient(f func([]float64) float64, x, grad []float64) {
	if len(x) != len(grad) {
		//lint:ignore nopanic argument contract shared with the gonum-style kernels: mismatched scratch lengths are programmer errors
		panic("optimize: NumericGradient length mismatch")
	}
	// h ~ cbrt(eps) balances truncation and rounding error for central
	// differences.
	const hBase = 6.055454452393343e-06 // cbrt(2^-52)
	for i := range x {
		xi := x[i]
		h := hBase * (1 + math.Abs(xi))
		x[i] = xi + h
		fp := f(x)
		x[i] = xi - h
		fm := f(x)
		x[i] = xi
		grad[i] = (fp - fm) / (2 * h)
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

func axpy(dst []float64, alpha float64, src []float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

func normInf(a []float64) float64 {
	var m float64
	for _, x := range a {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}
