package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quadratic(center []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	center := []float64{1, -2, 3}
	p := &Problem{Dim: 3, Func: quadratic(center)}
	r, err := Minimize(p, []float64{0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Converged {
		t.Fatalf("status = %v", r.Status)
	}
	for i := range center {
		if math.Abs(r.X[i]-center[i]) > 1e-5 {
			t.Errorf("X[%d] = %v, want %v", i, r.X[i], center[i])
		}
	}
}

func TestMinimizeWithAnalyticGradient(t *testing.T) {
	center := []float64{5, 5}
	p := &Problem{
		Dim:  2,
		Func: quadratic(center),
		Grad: func(x, g []float64) {
			for i := range x {
				g[i] = 2 * (x[i] - center[i])
			}
		},
	}
	r, err := Minimize(p, []float64{-3, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.F > 1e-10 {
		t.Errorf("F = %v, want ~0", r.F)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	// The classic banana function; minimum at (1, 1).
	p := &Problem{
		Dim: 2,
		Func: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
	}
	r, err := Minimize(p, []float64{-1.2, 1}, &Options{MaxIterations: 500, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-4 || math.Abs(r.X[1]-1) > 1e-4 {
		t.Errorf("Rosenbrock minimiser = %v (f=%v, status=%v)", r.X, r.F, r.Status)
	}
}

func TestMinimizeBoxActiveConstraint(t *testing.T) {
	// Unconstrained minimum at (3, 3); the box caps it at (1, 1).
	p := &Problem{
		Dim:   2,
		Func:  quadratic([]float64{3, 3}),
		Lower: []float64{-1, -1},
		Upper: []float64{1, 1},
	}
	r, err := Minimize(p, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-6 || math.Abs(r.X[1]-1) > 1e-6 {
		t.Errorf("box-constrained minimiser = %v, want (1,1)", r.X)
	}
}

func TestMinimizeStartOutsideBoxIsProjected(t *testing.T) {
	p := &Problem{
		Dim:   1,
		Func:  quadratic([]float64{0}),
		Lower: []float64{-2},
		Upper: []float64{2},
	}
	r, err := Minimize(p, []float64{50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]) > 1e-6 {
		t.Errorf("X = %v, want 0", r.X)
	}
}

func TestMinimizeMixedBounds(t *testing.T) {
	// Only a lower bound; minimum of (x-(-5))² at the bound -1.
	p := &Problem{
		Dim:   1,
		Func:  quadratic([]float64{-5}),
		Lower: []float64{-1},
	}
	r, err := Minimize(p, []float64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-(-1)) > 1e-6 {
		t.Errorf("X = %v, want -1", r.X)
	}
}

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(&Problem{Dim: 2, Func: nil}, []float64{0, 0}, nil); err == nil {
		t.Error("nil Func accepted")
	}
	f := quadratic([]float64{0})
	if _, err := Minimize(&Problem{Dim: 2, Func: f}, []float64{0}, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Minimize(&Problem{Dim: 1, Func: f, Lower: []float64{1}, Upper: []float64{0}}, []float64{0}, nil); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Minimize(&Problem{Dim: 0, Func: f}, nil, nil); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestMinimizeIllConditionedQuadratic(t *testing.T) {
	// f = x² + 1000 y²: steep valley, tests curvature adaptation.
	p := &Problem{
		Dim: 2,
		Func: func(x []float64) float64 {
			return x[0]*x[0] + 1000*x[1]*x[1]
		},
	}
	r, err := Minimize(p, []float64{1, 1}, &Options{MaxIterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	if r.F > 1e-8 {
		t.Errorf("F = %v, want ~0 (status %v after %d iters)", r.F, r.Status, r.Iterations)
	}
}

func TestMinimizeQuadraticRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		center := make([]float64, n)
		x0 := make([]float64, n)
		for i := range center {
			center[i] = rng.NormFloat64() * 5
			x0[i] = rng.NormFloat64() * 5
		}
		p := &Problem{Dim: n, Func: quadratic(center)}
		r, err := Minimize(p, x0, nil)
		if err != nil {
			return false
		}
		for i := range center {
			if math.Abs(r.X[i]-center[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNumericGradientMatchesAnalytic(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Sin(x[0]) + x[1]*x[1]*x[0] + math.Exp(0.1*x[2])
	}
	x := []float64{0.7, -1.3, 2.1}
	grad := make([]float64, 3)
	NumericGradient(f, x, grad)
	want := []float64{
		math.Cos(x[0]) + x[1]*x[1],
		2 * x[1] * x[0],
		0.1 * math.Exp(0.1*x[2]),
	}
	for i := range want {
		if math.Abs(grad[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Errorf("grad[%d] = %v, want %v", i, grad[i], want[i])
		}
	}
	// x must be restored.
	if x[0] != 0.7 || x[1] != -1.3 || x[2] != 2.1 {
		t.Errorf("NumericGradient mutated x: %v", x)
	}
}

func TestStatusString(t *testing.T) {
	if Converged.String() != "converged" {
		t.Error(Converged.String())
	}
	if MaxIterationsReached.String() != "max iterations reached" {
		t.Error(MaxIterationsReached.String())
	}
	if LineSearchStalled.String() != "line search stalled" {
		t.Error(LineSearchStalled.String())
	}
	if Status(42).String() != "Status(42)" {
		t.Error(Status(42).String())
	}
}

func TestMinimizeDoesNotMutateX0(t *testing.T) {
	x0 := []float64{3, 3}
	p := &Problem{Dim: 2, Func: quadratic([]float64{0, 0})}
	if _, err := Minimize(p, x0, nil); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 3 || x0[1] != 3 {
		t.Errorf("x0 mutated: %v", x0)
	}
}
