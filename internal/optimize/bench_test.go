package optimize

import "testing"

func BenchmarkMinimizeRosenbrock(b *testing.B) {
	p := &Problem{
		Dim: 2,
		Func: func(x []float64) float64 {
			a := 1 - x[0]
			c := x[1] - x[0]*x[0]
			return a*a + 100*c*c
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(p, []float64{-1.2, 1}, &Options{MaxIterations: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeBoxQuadratic10D(b *testing.B) {
	n := 10
	p := &Problem{
		Dim: n,
		Func: func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - 0.3
				s += d * d * float64(i+1)
			}
			return s
		},
		Lower: make([]float64, n),
		Upper: fillSlice(n, 1),
	}
	x0 := fillSlice(n, 0.9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(p, x0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func fillSlice(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
