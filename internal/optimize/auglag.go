package optimize

import (
	"fmt"
	"math"
)

// Constraint represents a scalar inequality constraint c(x) ≤ 0.
type Constraint struct {
	// Name labels the constraint in diagnostics.
	Name string
	// Func evaluates the constraint; feasible iff the result is ≤ 0.
	Func func(x []float64) float64
}

// AugLagOptions tunes MinimizeAugLag. The zero value selects defaults.
type AugLagOptions struct {
	// Inner configures each inner unconstrained (box-only) solve.
	Inner Options
	// MaxOuter bounds the number of multiplier updates (default 10).
	MaxOuter int
	// InitialPenalty is the starting quadratic penalty weight (default 10).
	InitialPenalty float64
	// PenaltyGrowth multiplies the penalty when infeasibility does not
	// shrink fast enough (default 10).
	PenaltyGrowth float64
	// FeasTolerance is the target maximum violation (default 1e-6).
	FeasTolerance float64
}

func (o *AugLagOptions) withDefaults() AugLagOptions {
	out := AugLagOptions{MaxOuter: 10, InitialPenalty: 10, PenaltyGrowth: 10, FeasTolerance: 1e-6}
	if o == nil {
		return out
	}
	out.Inner = o.Inner
	if o.MaxOuter > 0 {
		out.MaxOuter = o.MaxOuter
	}
	if o.InitialPenalty > 0 {
		out.InitialPenalty = o.InitialPenalty
	}
	if o.PenaltyGrowth > 1 {
		out.PenaltyGrowth = o.PenaltyGrowth
	}
	if o.FeasTolerance > 0 {
		out.FeasTolerance = o.FeasTolerance
	}
	return out
}

// AugLagResult extends Result with constraint diagnostics.
type AugLagResult struct {
	Result
	// MaxViolation is the largest constraint value max(c_i(x), 0) at X.
	MaxViolation float64
	// OuterIterations is the number of multiplier updates performed.
	OuterIterations int
	// Multipliers holds the final Lagrange-multiplier estimates, one per
	// constraint.
	Multipliers []float64
}

// MinimizeAugLag minimises p subject to cons[i].Func(x) ≤ 0 using the
// classic augmented-Lagrangian (method of multipliers) with the PHR
// (Powell–Hestenes–Rockafellar) update:
//
//	L(x; λ, μ) = f(x) + 1/(2μ) Σ ( max(0, λ_i + μ·c_i(x))² − λ_i² )
//
// Box constraints in p are handled natively by the inner solver.
func MinimizeAugLag(p *Problem, cons []Constraint, x0 []float64, opts *AugLagOptions) (*AugLagResult, error) {
	if err := p.validate(x0); err != nil {
		return nil, err
	}
	for i, c := range cons {
		if c.Func == nil {
			return nil, fmt.Errorf("%w: constraint %d (%q) has nil Func", ErrBadProblem, i, c.Name)
		}
	}
	o := opts.withDefaults()

	lambda := make([]float64, len(cons))
	mu := o.InitialPenalty
	x := append([]float64(nil), x0...)

	cvals := make([]float64, len(cons))
	evalCons := func(pt []float64) float64 {
		var worst float64
		for i, c := range cons {
			cvals[i] = c.Func(pt)
			if v := cvals[i]; v > worst {
				worst = v
			}
		}
		return worst
	}

	var (
		last    *Result
		totalFE int
		outer   int
	)
	prevViol := math.Inf(1)
	for outer = 0; outer < o.MaxOuter; outer++ {
		muLocal, lambdaLocal := mu, append([]float64(nil), lambda...)
		inner := &Problem{
			Dim:   p.Dim,
			Lower: p.Lower,
			Upper: p.Upper,
			Func: func(pt []float64) float64 {
				v := p.Func(pt)
				for i, c := range cons {
					t := lambdaLocal[i] + muLocal*c.Func(pt)
					if t > 0 {
						v += (t*t - lambdaLocal[i]*lambdaLocal[i]) / (2 * muLocal)
					} else {
						v -= lambdaLocal[i] * lambdaLocal[i] / (2 * muLocal)
					}
				}
				return v
			},
		}
		r, err := Minimize(inner, x, &o.Inner)
		if err != nil {
			return nil, err
		}
		totalFE += r.FuncEvals
		last = r
		copy(x, r.X)

		viol := evalCons(x)
		// Multiplier update: λ ← max(0, λ + μ·c(x)).
		for i := range lambda {
			lambda[i] = math.Max(0, lambda[i]+mu*cvals[i])
		}
		if viol <= o.FeasTolerance {
			outer++
			break
		}
		// Grow the penalty when infeasibility stalls.
		if viol > 0.25*prevViol {
			mu *= o.PenaltyGrowth
		}
		prevViol = viol
	}

	out := &AugLagResult{
		Result:          *last,
		OuterIterations: outer,
		Multipliers:     lambda,
	}
	out.X = x
	out.F = p.Func(x)
	out.FuncEvals = totalFE
	out.MaxViolation = math.Max(0, evalCons(x))
	return out, nil
}

// HingeSquared returns max(0, c)², the smooth one-sided penalty used for
// soft path constraints in the MPC objective, and is shared here so
// controllers and tests agree on the exact form.
func HingeSquared(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return c * c
}
