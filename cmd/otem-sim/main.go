// Command otem-sim runs a single driving simulation under one methodology
// and prints the Algorithm 1 outputs (capacity loss, HEES energy) plus the
// derived metrics. Optionally dumps a per-step trace as CSV for plotting.
//
// Usage:
//
//	otem-sim -method OTEM -cycle US06 -repeats 5 -ucap 25000 -trace trace.csv
//
// With -fleet N the command switches to Monte Carlo fleet mode: N vehicles
// with seeded stochastic scenarios, progress as NDJSON on stderr, the
// otem.fleet/v1 result on stdout with -json:
//
//	otem-sim -fleet 10000 -method Parallel -days 5 -seed 42 -parallel 8 -json
//
// With -hmpc the command runs the two-layer hierarchical MPC: an outer
// route-preview planner schedules SoC and temperature references that the
// fast OTEM layer tracks. -plan prints only the cacheable outer plan:
//
//	otem-sim -hmpc -cycle UDDS -ambient 308
//	otem-sim -hmpc -usage highway -route 900 -seed 7 -plan
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"encoding/json"

	"repro/internal/analysis"
	"repro/internal/drivecycle"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/otem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-sim: ")

	var (
		method  = flag.String("method", "OTEM", "methodology: "+strings.Join(experiments.MethodNames(), ", "))
		cycle   = flag.String("cycle", "US06", "drive cycle: "+strings.Join(drivecycle.AllNames(), ", "))
		repeats = flag.Int("repeats", 5, "number of back-to-back cycle repetitions")
		ucap    = flag.Float64("ucap", 25000, "ultracapacitor size in farads")
		trace   = flag.String("trace", "", "optional path for a per-step CSV trace")
		analyze = flag.Bool("analyze", false, "print trace-derived analysis (peak shaving, regen capture, cooler duty)")
		asJSON  = flag.Bool("json", false, "emit the result summary as JSON instead of text")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the run to this file")

		// Hierarchical mode (-hmpc switches over; shares -cycle, -repeats,
		// -ucap, -seed, -route and -json with the other modes).
		hmpc      = flag.Bool("hmpc", false, "two-layer hierarchical MPC mode: route-preview outer planner over the OTEM tracker")
		usage     = flag.String("usage", "", "hmpc mode: synthesize the route from a fleet usage class (commuter, delivery, highway) instead of -cycle")
		ambient   = flag.Float64("ambient", 298, "hmpc mode: ambient temperature, kelvin")
		block     = flag.Float64("block", 30, "hmpc mode: outer planner block length, seconds")
		maxBlocks = flag.Int("maxblocks", 64, "hmpc mode: outer horizon cap, blocks")
		planOnly  = flag.Bool("plan", false, "hmpc mode: print only the outer route plan as otem.plan/v1 JSON")

		// Fleet mode (-fleet > 0 switches over; -cycle/-repeats/-trace do
		// not apply, routes are synthesized per vehicle from the seed).
		fleet    = flag.Int("fleet", 0, "Monte Carlo fleet mode: number of vehicles (0 = single-run mode)")
		days     = flag.Int("days", 1, "fleet mode: daily routes per vehicle")
		seed     = flag.Int64("seed", 0, "fleet mode: master seed (same seed ⇒ bit-identical result)")
		parallel = flag.Int("parallel", 0, "fleet mode: worker count (0 = GOMAXPROCS; result is identical at any setting)")
		batch    = flag.Int("batch", 0, "fleet mode: lockstep rollout lane width (0 = auto, <0 = per-vehicle reference; result is identical at any setting)")
		route    = flag.Float64("route", 600, "fleet mode: target route duration per day, seconds")
		progress = flag.Bool("progress", true, "fleet mode: emit NDJSON progress events on stderr")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("start CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *hmpc {
		hf := hmpcFlags{
			cycle:     *cycle,
			usage:     *usage,
			seed:      *seed,
			route:     *route,
			repeats:   *repeats,
			ucap:      *ucap,
			ambient:   *ambient,
			block:     *block,
			maxBlocks: *maxBlocks,
			planOnly:  *planOnly,
			asJSON:    *asJSON,
		}
		// The single-run default of 5 repeats would quintuple every
		// hierarchical route; only an explicit -repeats carries over.
		hf.repeats = 1
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "repeats" {
				hf.repeats = *repeats
			}
		})
		runHMPC(hf)
		return
	}

	if *fleet > 0 {
		runFleet(fleetFlags{
			vehicles: *fleet,
			days:     *days,
			seed:     *seed,
			parallel: *parallel,
			batch:    *batch,
			route:    *route,
			method:   *method,
			ucap:     *ucap,
			asJSON:   *asJSON,
			progress: *progress,
		})
		return
	}

	res, err := experiments.Run(experiments.RunSpec{
		Method:    experiments.Methodology(*method),
		Cycle:     *cycle,
		Repeats:   *repeats,
		UltracapF: *ucap,
		Trace:     *trace != "" || *analyze,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		summary := res
		summary.Trace = nil // traces go to -trace, not the JSON summary
		if err := enc.Encode(otem.EncodeResult(summary)); err != nil {
			log.Fatal(err)
		}
	}

	duration := float64(res.Steps) * res.DT
	if *asJSON {
		// JSON replaces the text summary; analysis/trace flags still apply.
		_ = duration
	} else {
		printSummary(res, *cycle, *repeats, *ucap, duration)
	}

	if *analyze {
		fmt.Println()
		analysis.Summarize(res.Trace, res.DT).Write(os.Stdout, res.Controller)
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace              %s (%d rows)\n", *trace, res.Steps)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the live set so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("write heap profile: %v", err)
		}
	}
}

// printSummary renders the human-readable result block.
func printSummary(res sim.Result, cycle string, repeats int, ucap, duration float64) {
	fmt.Printf("methodology        %s\n", res.Controller)
	fmt.Printf("route              %s ×%d (%.0f s)\n", cycle, repeats, duration)
	fmt.Printf("ultracapacitor     %.0f F\n", ucap)
	fmt.Printf("capacity loss      %.6f %% of rated capacity\n", res.QlossPct)
	fmt.Printf("HEES energy        %.2f MJ (%.2f kWh)\n", res.HEESEnergyJ/1e6, units.JouleToKWh(res.HEESEnergyJ))
	fmt.Printf("average power      %.0f W\n", res.AvgPowerW)
	fmt.Printf("cooling energy     %.2f MJ\n", res.CoolingEnergyJ/1e6)
	fmt.Printf("battery temp       max %.2f °C, avg %.2f °C\n",
		units.KToC(res.MaxBatteryTemp), units.KToC(res.AvgBatteryTemp))
	fmt.Printf("thermal violation  %.0f s above 40 °C\n", res.ThermalViolationSec)
	fmt.Printf("final SoC / SoE    %.3f / %.3f\n", res.FinalSoC, res.FinalSoE)
	fmt.Printf("fallback steps     %d\n", res.FallbackSteps)
}
