package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/otem"
)

// fleetFlags carries the -fleet mode knobs out of main.
type fleetFlags struct {
	vehicles int
	days     int
	seed     int64
	parallel int
	batch    int
	route    float64
	method   string
	ucap     float64
	asJSON   bool
	progress bool
}

// progressEvent is one NDJSON progress line on stderr, emitted as chunks
// of the fleet complete so a supervising process can track a long run.
type progressEvent struct {
	Event    string `json:"event"`
	Done     int    `json:"vehicles_done"`
	Total    int    `json:"vehicles_total"`
	Fraction string `json:"fraction"`
}

// runFleet executes the Monte Carlo fleet mode and renders the result,
// as otem.fleet/v1 JSON on stdout (-json) or as a text summary.
func runFleet(ff fleetFlags) {
	spec := otem.FleetSpec{
		Vehicles:     ff.vehicles,
		Days:         ff.days,
		Seed:         ff.seed,
		Method:       otem.Methodology(ff.method),
		UltracapF:    ff.ucap,
		RouteSeconds: ff.route,
	}
	opts := []otem.Option{otem.WithParallelism(ff.parallel), otem.WithFleetBatch(ff.batch)}
	if ff.progress {
		enc := json.NewEncoder(os.Stderr)
		opts = append(opts, otem.WithProgress(func(done, total int) {
			_ = enc.Encode(progressEvent{
				Event:    "progress",
				Done:     done,
				Total:    total,
				Fraction: fmt.Sprintf("%.3f", float64(done)/float64(total)),
			})
		}))
	}

	res, err := otem.RunFleet(context.Background(), spec, opts...)
	if err != nil {
		log.Fatal(err)
	}

	if ff.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(otem.EncodeFleet(res)); err != nil {
			log.Fatal(err)
		}
		return
	}
	printFleetSummary(res)
}

// printFleetSummary renders the human-readable fleet block: the headline
// distributions and the per-family breakdown.
func printFleetSummary(res *otem.FleetResult) {
	fmt.Printf("fleet              %d vehicles × %d day(s), seed %d\n",
		res.Vehicles, res.Days, res.Spec.Seed)
	fmt.Printf("methodology        %s\n", res.Spec.Method)
	fmt.Printf("digest             %s\n", res.Digest())
	fmt.Printf("steps simulated    %d\n", res.Steps)
	fmt.Printf("fallback steps     %d\n", res.FallbackSteps)
	fmt.Printf("thermal violation  %.0f s above 40 °C (fleet total)\n", res.ThermalViolationSec)
	printDist("capacity loss %", res.Qloss)
	printDist("wall energy MJ", scaled{s: res.EnergyJ, factor: 1e-6})
	printDist("peak temp °C", scaled{s: res.PeakTempK, factor: 1, offset: -273.15})
	fmt.Printf("families:\n")
	for _, f := range res.Families {
		if f.Vehicles == 0 {
			continue
		}
		fmt.Printf("  %-22s %5d vehicles   median qloss %.6f %%\n",
			f.Name, f.Vehicles, f.Qloss.Quantile(0.5))
	}
}

// dist is the quantile view printDist needs; scaled adapts a sketch's
// units (J→MJ, K→°C) without copying it.
type dist interface {
	Quantile(phi float64) float64
	Mean() float64
}

type scaled struct {
	s      *otem.QuantileSketch
	factor float64
	offset float64
}

func (v scaled) Quantile(phi float64) float64 { return v.s.Quantile(phi)*v.factor + v.offset }
func (v scaled) Mean() float64                { return v.s.Mean()*v.factor + v.offset }

func printDist(label string, d dist) {
	fmt.Printf("%-18s p05 %.4f   p50 %.4f   p95 %.4f   mean %.4f\n",
		label, d.Quantile(0.05), d.Quantile(0.5), d.Quantile(0.95), d.Mean())
}
