package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/units"
	"repro/otem"
)

// hmpcFlags carries the -hmpc mode knobs out of main.
type hmpcFlags struct {
	cycle     string
	usage     string
	seed      int64
	route     float64
	repeats   int
	ucap      float64
	ambient   float64
	block     float64
	maxBlocks int
	planOnly  bool
	asJSON    bool
}

// spec assembles the PlanSpec. A non-empty -usage selects a synthesized
// route and overrides -cycle.
func (hf hmpcFlags) spec() otem.PlanSpec {
	spec := otem.PlanSpec{
		Cycle:        hf.cycle,
		Repeats:      hf.repeats,
		UltracapF:    hf.ucap,
		AmbientK:     hf.ambient,
		BlockSeconds: hf.block,
		MaxBlocks:    hf.maxBlocks,
	}
	if hf.usage != "" {
		spec.Cycle = ""
		spec.Usage = hf.usage
		spec.Seed = hf.seed
		spec.RouteSeconds = hf.route
	}
	return spec
}

// runHMPC executes the two-layer hierarchical mode: -plan solves and
// prints only the cacheable outer route plan; otherwise the full
// hierarchical simulation runs and the summary carries the extra layer
// counters.
func runHMPC(hf hmpcFlags) {
	if hf.planOnly {
		plan, err := otem.PlanRoute(hf.spec())
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(otem.EncodePlan(plan)); err != nil {
			log.Fatal(err)
		}
		return
	}

	res, err := otem.SimulateHierarchical(context.Background(), hf.spec())
	if err != nil {
		log.Fatal(err)
	}
	if hf.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(otem.EncodeResult(res.Result)); err != nil {
			log.Fatal(err)
		}
		return
	}
	printHMPCSummary(res, hf)
}

// printHMPCSummary renders the human-readable hierarchical block: the
// flat summary plus the outer-plan shape and per-layer replan counters.
func printHMPCSummary(res *otem.HierarchicalResult, hf hmpcFlags) {
	route := hf.cycle
	if hf.usage != "" {
		route = fmt.Sprintf("synth %s (seed %d)", hf.usage, hf.seed)
	}
	duration := float64(res.Steps) * res.DT
	printSummary(res.Result, route, hf.repeats, hf.ucap, duration)
	fmt.Printf("ambient            %.1f °C\n", units.KToC(hf.ambient))
	fmt.Printf("outer plan         %d blocks × %.0f s\n", res.Plan.Blocks, res.Plan.BlockSeconds)
	fmt.Printf("outer replans      %d (route-start plan included)\n", res.OuterReplans)
	fmt.Printf("inner replans      %d (%d forced by reference divergence)\n",
		res.InnerReplans, res.DivergenceReplans)
}
