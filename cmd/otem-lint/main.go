// Command otem-lint runs the domain-aware static-analysis suite from
// repro/internal/lint over the module.
//
// Standalone (the `make lint` gate):
//
//	otem-lint [flags] [packages]     # packages default to ./...
//	otem-lint -list                  # describe the analyzers
//	otem-lint -floatcompare -detrand ./internal/...   # subset
//	otem-lint -format=sarif ./... > findings.sarif    # SARIF 2.1.0
//
// The driver schedules analyzers over the package-dependency DAG on the
// bounded worker pool (repro/internal/runner), propagating analysis facts
// from dependencies to dependents; -seq selects the sequential reference
// driver (byte-identical output), and -benchjson records a
// sequential-vs-parallel comparison.
//
// It also speaks the `go vet -vettool` protocol (-V=full, -flags, and a
// single pkg.cfg argument), so the same binary plugs into the build
// cache, with facts flowing between compilation units through vetx files:
//
//	go build -o bin/otem-lint ./cmd/otem-lint
//	go vet -vettool=bin/otem-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-lint: ")

	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, false, "run only selected analyzers: "+summary)
	}
	list := flag.Bool("list", false, "describe the analyzers and exit")
	format := flag.String("format", "text", "output format: text, json or sarif")
	seq := flag.Bool("seq", false, "use the sequential reference driver instead of the parallel DAG scheduler")
	workers := flag.Int("parallel", 0, "worker pool size for the DAG scheduler (default GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "measure sequential vs parallel analysis and write a JSON record to this file")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: otem-lint [flags] [packages | pkg.cfg]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	analyzers := lint.All()
	if anySelected(enabled) {
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				sel = append(sel, a)
			}
		}
		analyzers = sel
	}

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	emit, ok := emitters[*format]
	if !ok {
		log.Printf("unknown -format %q (want text, json or sarif)", *format)
		os.Exit(2)
	}

	args := flag.Args()

	// `go vet -vettool` hands exactly one JSON config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := lint.RunUnit(args[0], analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ctx := context.Background()
	pool := runner.New(runner.Workers(*workers))
	mod, err := lint.LoadContext(ctx, pool, "", patterns...)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, mod, analyzers); err != nil {
			log.Println(err)
			os.Exit(2)
		}
		return
	}

	var findings []lint.Finding
	if *seq {
		findings = mod.Run(analyzers)
	} else {
		findings, err = mod.RunParallel(ctx, pool, analyzers)
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
	}
	if err := emit(os.Stdout, findings, analyzers); err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if *format == "text" {
			fmt.Printf("otem-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// emitters maps -format values to renderers.
var emitters = map[string]func(io.Writer, []lint.Finding, []*lint.Analyzer) error{
	"text": func(w io.Writer, fs []lint.Finding, _ []*lint.Analyzer) error {
		return lint.WriteText(w, fs)
	},
	"json": func(w io.Writer, fs []lint.Finding, _ []*lint.Analyzer) error {
		return lint.WriteJSON(w, fs)
	},
	"sarif": lint.WriteSARIF,
}

// benchParallelRun is one parallel-driver measurement at a fixed
// GOMAXPROCS setting: best-of-rounds wall-clock time and the speedup over
// the sequential reference at the same machine state.
type benchParallelRun struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// benchRecord is the JSON document -benchjson writes: the sequential
// reference driver timed once, then the parallel DAG scheduler at both
// GOMAXPROCS=1 (scheduler overhead in isolation) and GOMAXPROCS=NumCPU
// (real speedup), mirroring the BENCH_sim/BENCH_serve methodology.
// Recording both keeps the numbers honest — a single measurement taken at
// an unknown processor count is not comparable across machines. SSANs is
// the wall-clock time spent building the per-function SSA IR during the
// best sequential round, so the cost of the value-flow layer stays visible
// next to the total.
type benchRecord struct {
	NumCPU       int                `json:"num_cpu"`
	Packages     int                `json:"packages"`
	Analyzers    int                `json:"analyzers"`
	Rounds       int                `json:"rounds"`
	SequentialNs int64              `json:"sequential_ns"`
	SSANs        int64              `json:"ssa_ns"`
	CallGraphNs  int64              `json:"callgraph_ns"`
	SummaryNs    int64              `json:"summary_ns"`
	Parallel     []benchParallelRun `json:"parallel"`
	Findings     int                `json:"findings"`
}

// writeBench times both drivers over the loaded module (best of three
// rounds each) and records the result. The parallel driver is measured at
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU with a fresh worker pool sized to
// each setting (the shared pool would keep its creation-time width); the
// previous GOMAXPROCS is restored before returning. Both settings are
// always recorded, even when they coincide on a single-CPU machine.
func writeBench(path string, mod *lint.Module, analyzers []*lint.Analyzer) error {
	const rounds = 3
	ctx := context.Background()

	var seqBest time.Duration
	var ssaBest, cgBest, sumBest int64
	var findings int
	for i := 0; i < rounds; i++ {
		ssa0 := lint.SSABuildNanos()
		cg0 := lint.CallGraphNanos()
		sum0 := lint.SummaryNanos()
		t0 := time.Now()
		fs := mod.Run(analyzers)
		d := time.Since(t0)
		ssaD := lint.SSABuildNanos() - ssa0
		cgD := lint.CallGraphNanos() - cg0
		sumD := lint.SummaryNanos() - sum0
		if i == 0 || d < seqBest {
			seqBest = d
			ssaBest = ssaD
			cgBest = cgD
			sumBest = sumD
		}
		findings = len(fs)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var parallel []benchParallelRun
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		pool := runner.New(runner.Workers(procs))
		var parBest time.Duration
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			pfs, err := mod.RunParallel(ctx, pool, analyzers)
			if err != nil {
				return err
			}
			if d := time.Since(t0); i == 0 || d < parBest {
				parBest = d
			}
			if len(pfs) != findings {
				return fmt.Errorf("driver mismatch: sequential %d findings, parallel %d", findings, len(pfs))
			}
		}
		parallel = append(parallel, benchParallelRun{
			GOMAXPROCS: procs,
			ParallelNs: parBest.Nanoseconds(),
			Speedup:    float64(seqBest) / float64(parBest),
		})
	}

	rec := benchRecord{
		NumCPU:       runtime.NumCPU(),
		Packages:     len(mod.Packages),
		Analyzers:    len(analyzers),
		Rounds:       rounds,
		SequentialNs: seqBest.Nanoseconds(),
		SSANs:        ssaBest,
		CallGraphNs:  cgBest,
		SummaryNs:    sumBest,
		Parallel:     parallel,
		Findings:     findings,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return err
	}
	fmt.Printf("otem-lint bench: %d packages, sequential %v", rec.Packages, seqBest)
	for _, p := range parallel {
		fmt.Printf("; parallel@%d %v (%.2fx)", p.GOMAXPROCS, time.Duration(p.ParallelNs), p.Speedup)
	}
	fmt.Printf(" -> %s\n", path)
	return nil
}

func anySelected(enabled map[string]*bool) bool {
	for _, v := range enabled {
		if *v {
			return true
		}
	}
	return false
}

// printFlags emits the JSON flag description `go vet` queries before
// deciding which flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake the go command uses to
// fingerprint vet tools for its build cache: print a line containing the
// executable path and a content hash, then exit.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
