// Command otem-lint runs the domain-aware static-analysis suite from
// repro/internal/lint over the module.
//
// Standalone (the `make lint` gate):
//
//	otem-lint [flags] [packages]     # packages default to ./...
//	otem-lint -list                  # describe the analyzers
//	otem-lint -floatcompare -detrand ./internal/...   # subset
//
// It also speaks the `go vet -vettool` protocol (-V=full, -flags, and a
// single pkg.cfg argument), so the same binary plugs into the build
// cache:
//
//	go build -o bin/otem-lint ./cmd/otem-lint
//	go vet -vettool=bin/otem-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-lint: ")

	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, false, "run only selected analyzers: "+summary)
	}
	list := flag.Bool("list", false, "describe the analyzers and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: otem-lint [flags] [packages | pkg.cfg]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	analyzers := lint.All()
	if anySelected(enabled) {
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				sel = append(sel, a)
			}
		}
		analyzers = sel
	}

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()

	// `go vet -vettool` hands exactly one JSON config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := lint.RunUnit(args[0], analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.Load("", patterns...)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	findings := mod.Run(analyzers)
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Printf("otem-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func anySelected(enabled map[string]*bool) bool {
	for _, v := range enabled {
		if *v {
			return true
		}
	}
	return false
}

// printFlags emits the JSON flag description `go vet` queries before
// deciding which flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake the go command uses to
// fingerprint vet tools for its build cache: print a line containing the
// executable path and a content hash, then exit.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
