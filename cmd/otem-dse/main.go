// Command otem-dse explores the HEES + cooling design space the paper
// defers: ultracapacitor size × cooler capacity under the OTEM controller,
// pricing each design and printing the cost-vs-battery-life Pareto
// frontier.
//
// Usage:
//
//	otem-dse -cycle US06 -repeats 3 -slack 1.10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-dse: ")

	var (
		cycle   = flag.String("cycle", "US06", "drive cycle")
		repeats = flag.Int("repeats", 3, "cycle repetitions")
		slack   = flag.Float64("slack", 1.10, "loss slack multiplier for the recommended design")
	)
	flag.Parse()

	res, err := dse.Explore(dse.Config{Cycle: *cycle, Repeats: *repeats})
	if err != nil {
		log.Fatal(err)
	}
	res.Write(os.Stdout)

	best, err := res.Best(*slack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended (cheapest within %.0f%% of best loss): %.0f F bank + %.0f W cooler = $%.0f\n",
		(*slack-1)*100, best.UltracapF, best.CoolerMaxPower, best.CostDollars)
}
