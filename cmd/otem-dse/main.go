// Command otem-dse explores the HEES + cooling design space the paper
// defers: ultracapacitor size × cooler capacity under the OTEM controller,
// pricing each design and printing the cost-vs-battery-life Pareto
// frontier. The grid runs on the bounded worker pool (-parallel caps the
// fan-out) and Ctrl-C cancels the exploration mid-grid.
//
// Usage:
//
//	otem-dse -cycle US06 -repeats 3 -slack 1.10 -parallel 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/dse"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-dse: ")

	var (
		cycle    = flag.String("cycle", "US06", "drive cycle")
		repeats  = flag.Int("repeats", 3, "cycle repetitions")
		slack    = flag.Float64("slack", 1.10, "loss slack multiplier for the recommended design")
		parallel = flag.Int("parallel", 0, "max concurrent design evaluations (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress the progress line on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []runner.Option{runner.Workers(*parallel)}
	if !*quiet {
		opts = append(opts, runner.Progress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rdesigns %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	res, err := dse.ExploreContext(ctx, dse.Config{Cycle: *cycle, Repeats: *repeats}, runner.New(opts...))
	if err != nil {
		if errors.Is(err, runner.ErrCanceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	res.Write(os.Stdout)

	best, err := res.Best(*slack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended (cheapest within %.0f%% of best loss): %.0f F bank + %.0f W cooler = $%.0f\n",
		(*slack-1)*100, best.UltracapF, best.CoolerMaxPower, best.CostDollars)
}
