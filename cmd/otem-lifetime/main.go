// Command otem-lifetime projects the battery to its end of life (20 %
// capacity loss) under each methodology, carrying the accumulated fade into
// the plant — the paper's BLT claim taken to its conclusion. The
// per-methodology projections run concurrently on the batch runner
// (-parallel bounds the fan-out) and Ctrl-C cancels the whole fleet
// mid-route.
//
// Usage:
//
//	otem-lifetime -cycle US06 -repeats 3 -methods Parallel,Dual,OTEM -parallel 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-lifetime: ")

	var (
		cycleName = flag.String("cycle", "US06", "drive cycle")
		repeats   = flag.Int("repeats", 3, "cycle repetitions per route")
		methods   = flag.String("methods", "Parallel,Dual,OTEM", "comma-separated methodologies")
		block     = flag.Int("block", 2000, "routes extrapolated per simulated block")
		parallel  = flag.Int("parallel", 0, "max concurrent projections (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cycle, err := drivecycle.ByName(*cycleName)
	if err != nil {
		log.Fatal(err)
	}
	route := cycle.Repeat(*repeats)
	requests := vehicle.MidSizeEV().PowerSeries(route)
	routeKm := route.Stats().Distance / 1000

	var names []policy.Methodology
	for _, m := range strings.Split(*methods, ",") {
		names = append(names, policy.Methodology(strings.TrimSpace(m)))
	}

	// One projection per methodology; each block inside is sequential (the
	// fade feeds back), but the methodologies are independent jobs.
	pool := runner.New(runner.Workers(*parallel))
	projections, err := runner.Map(ctx, pool, len(names),
		func(ctx context.Context, i int) (*lifetime.Projection, error) {
			factory, err := controllerFactory(names[i])
			if err != nil {
				return nil, err
			}
			return lifetime.ProjectContext(ctx,
				lifetime.DefaultPlantFactory(sim.PlantConfig{}),
				factory, requests,
				lifetime.Config{BlockRoutes: *block, RouteKm: routeKm})
		})
	if err != nil {
		if errors.Is(err, runner.ErrCanceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}

	for i, proj := range projections {
		proj.Write(os.Stdout, fmt.Sprintf("%s on %s ×%d", names[i], *cycleName, *repeats))
		fmt.Println()
	}
}

func controllerFactory(method policy.Methodology) (lifetime.ControllerFactory, error) {
	if method == policy.MethodologyOTEM {
		return func() (sim.Controller, error) { return core.New(core.DefaultConfig()) }, nil
	}
	if _, err := policy.ByMethodology(method); err != nil {
		return nil, err
	}
	return func() (sim.Controller, error) { return policy.ByMethodology(method) }, nil
}
