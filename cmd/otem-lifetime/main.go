// Command otem-lifetime projects the battery to its end of life (20 %
// capacity loss) under each methodology, carrying the accumulated fade into
// the plant — the paper's BLT claim taken to its conclusion.
//
// Usage:
//
//	otem-lifetime -cycle US06 -repeats 3 -methods Parallel,Dual,OTEM
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/experiments"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-lifetime: ")

	var (
		cycleName = flag.String("cycle", "US06", "drive cycle")
		repeats   = flag.Int("repeats", 3, "cycle repetitions per route")
		methods   = flag.String("methods", "Parallel,Dual,OTEM", "comma-separated methodologies")
		block     = flag.Int("block", 2000, "routes extrapolated per simulated block")
	)
	flag.Parse()

	cycle, err := drivecycle.ByName(*cycleName)
	if err != nil {
		log.Fatal(err)
	}
	route := cycle.Repeat(*repeats)
	requests := vehicle.MidSizeEV().PowerSeries(route)
	routeKm := route.Stats().Distance / 1000

	for _, m := range strings.Split(*methods, ",") {
		m = strings.TrimSpace(m)
		factory, err := controllerFactory(m)
		if err != nil {
			log.Fatal(err)
		}
		proj, err := lifetime.Project(
			lifetime.DefaultPlantFactory(sim.PlantConfig{}),
			factory, requests,
			lifetime.Config{BlockRoutes: *block, RouteKm: routeKm},
		)
		if err != nil {
			log.Fatal(err)
		}
		proj.Write(os.Stdout, fmt.Sprintf("%s on %s ×%d", m, *cycleName, *repeats))
		fmt.Println()
	}
}

func controllerFactory(method string) (lifetime.ControllerFactory, error) {
	switch method {
	case experiments.MethodParallel:
		return func() (sim.Controller, error) { return policy.Parallel{}, nil }, nil
	case experiments.MethodCooling:
		return func() (sim.Controller, error) { return policy.NewActiveCooling(), nil }, nil
	case experiments.MethodDual:
		return func() (sim.Controller, error) { return policy.NewDual(), nil }, nil
	case experiments.MethodOTEM:
		return func() (sim.Controller, error) { return core.New(core.DefaultConfig()) }, nil
	}
	return nil, fmt.Errorf("unknown methodology %q", method)
}
