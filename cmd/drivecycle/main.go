// Command drivecycle inspects and exports the standard driving cycles used
// by the experiments: summary statistics and the derived EV power request
// series (the ADVISOR-substitute pipeline).
//
// Usage:
//
//	drivecycle                 # stats for all cycles
//	drivecycle -cycle US06     # one cycle
//	drivecycle -cycle US06 -csv us06.csv   # export speed trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/drivecycle"
	"repro/internal/units"
	"repro/internal/vehicle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drivecycle: ")

	var (
		name = flag.String("cycle", "", "cycle name (default: all)")
		csv  = flag.String("csv", "", "optional path to export the speed trace as CSV (requires -cycle)")
	)
	flag.Parse()

	var cycles []*drivecycle.Cycle
	if *name == "" {
		cycles = drivecycle.MustAll()
	} else {
		c, err := drivecycle.ByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		cycles = append(cycles, c)
	}

	ev := vehicle.MidSizeEV()
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s %10s\n",
		"Cycle", "Dur (s)", "Dist (km)", "Avg km/h", "Max km/h", "RMS a", "Avg P(kW)", "Peak P(kW)")
	for _, c := range cycles {
		s := c.Stats()
		p := vehicle.Stats(ev.PowerSeries(c), c.DT)
		fmt.Printf("%-8s %10.0f %10.2f %10.1f %10.1f %10.2f %10.1f %10.1f\n",
			c.Name, s.Duration, s.Distance/1000,
			units.MsToKmh(s.AvgSpeed), units.MsToKmh(s.MaxSpeed), s.RMSAccel,
			p.Mean/1e3, p.Peak/1e3)
	}

	if *csv != "" {
		if len(cycles) != 1 {
			log.Fatal("-csv requires -cycle")
		}
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := cycles[0].WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d samples)\n", *csv, cycles[0].Samples())
	}
}
