// Command otem-serve runs the simulation-as-a-service HTTP API: the otem
// facade (single runs, batch grids, NDJSON trace streaming) behind a
// deterministic result cache, singleflight coalescing, bounded-queue
// admission control and hand-written Prometheus metrics.
//
// Usage:
//
//	otem-serve -addr :8080 -parallel 8 -queue 32 -cache 256
//
// SIGINT/SIGTERM stop accepting and drain in-flight requests gracefully
// (bounded by -drain). With -addr 127.0.0.1:0 the kernel picks a free
// port; -portfile writes the bound address for scripts (the serve-smoke
// gate uses it).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-serve: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		parallel = flag.Int("parallel", 0, "max concurrently executing simulation requests (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "max requests waiting for a slot before 429s (0 = 4×parallel)")
		cache    = flag.Int("cache", 0, "result cache entries (0 = 256, negative disables)")
		timeout  = flag.Duration("timeout", 0, "per-request simulation budget (0 = 60s)")
		drain    = flag.Duration("drain", 0, "graceful shutdown drain budget (0 = 15s)")
		repeats  = flag.Int("max-repeats", 0, "max cycle repetitions per spec (0 = 100)")
		fleetVeh = flag.Int("max-fleet-vehicles", 0, "max vehicles per /v1/fleet request (0 = 512)")
		fleetDay = flag.Int("max-fleet-days", 0, "max days per /v1/fleet request (0 = 7)")
		fleetPar = flag.Int("fleet-parallel", 0, "worker fan-out inside one /v1/fleet request (0 = GOMAXPROCS)")
		fleetBat = flag.Int("fleet-batch", 0, "fleet rollout lane width (0 = auto batched, <0 = per-vehicle reference; result identical at any setting)")
		portfile = flag.String("portfile", "", "optional file to write the bound address to once listening")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes process internals; only enable on trusted/loopback listeners)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "otem-serve: ", 0)
	srv := serve.New(serve.Config{
		MaxInflight:      *parallel,
		MaxQueue:         *queue,
		CacheSize:        *cache,
		RequestTimeout:   *timeout,
		DrainTimeout:     *drain,
		MaxRepeats:       *repeats,
		MaxFleetVehicles: *fleetVeh,
		MaxFleetDays:     *fleetDay,
		FleetParallelism: *fleetPar,
		FleetBatch:       *fleetBat,
		Log:              logger,
		EnablePprof:      *pprofOn,
	})
	if *pprofOn {
		log.Printf("pprof endpoints enabled under /debug/pprof/ — do not expose this listener publicly")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained and stopped after %s", time.Since(start).Round(time.Millisecond))
}
