// Command otem-experiments regenerates the paper's evaluation: every figure
// and table of §IV (Fig. 1, Fig. 6, Fig. 7, Fig. 8, Fig. 9, Table I). The
// grid experiments run on the bounded worker pool (-parallel caps the
// fan-out; results are identical at any setting) and Ctrl-C cancels the
// suite mid-simulation.
//
// Usage:
//
//	otem-experiments                 # run everything
//	otem-experiments -run fig8,fig9  # selected experiments
//	otem-experiments -repeats 3      # cheaper Fig. 8/9 sweep
//	otem-experiments -parallel 4     # at most 4 concurrent simulations
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-experiments: ")

	var (
		run      = flag.String("run", "all", "comma-separated subset of: fig1,fig6,fig7,fig8,fig9,table1,hotspot,hmpc,ablations ('all' = figures+table)")
		repeats  = flag.Int("repeats", 3, "cycle repetitions for the Fig. 8/9 sweep")
		parallel = flag.Int("parallel", 0, "max concurrent simulations per experiment (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress the per-experiment progress line on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool {
		if name == "ablations" {
			return want[name] // opt-in only; ~1 min of MPC runs
		}
		return all || want[name]
	}

	// One pool per experiment: the progress callback restarts its count for
	// each grid, so the stderr line reads "fig8 12/24".
	pool := func(label string) *runner.Pool {
		opts := []runner.Option{runner.Workers(*parallel)}
		if !*quiet {
			opts = append(opts, runner.Progress(func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s %d/%d", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}))
		}
		return runner.New(opts...)
	}

	out := os.Stdout
	start := time.Now()

	if selected("fig1") {
		r, err := experiments.Fig1()
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig6") {
		r, err := experiments.Fig6Context(ctx, pool("fig6"))
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig7") {
		r, err := experiments.Fig7()
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig8") || selected("fig9") {
		sweep, err := experiments.SweepContext(ctx, *repeats, pool("fig8/9"))
		exit(err)
		if selected("fig8") {
			experiments.Fig8(sweep).Write(out)
			fmt.Fprintln(out)
		}
		if selected("fig9") {
			experiments.Fig9(sweep).Write(out)
			fmt.Fprintln(out)
		}
	}
	if selected("table1") {
		r, err := experiments.TableIContext(ctx, pool("table1"))
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("hotspot") {
		r, err := experiments.HotspotContext(ctx, pool("hotspot"))
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("hmpc") {
		r, err := experiments.HMPCCompareContext(ctx, pool("hmpc"), experiments.HMPCScenarios())
		exit(err)
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("ablations") {
		for _, study := range []struct {
			name string
			run  func(context.Context, *runner.Pool) (*experiments.AblationResult, error)
		}{
			{"horizon", experiments.AblationHorizonContext},
			{"weights", experiments.AblationWeightsContext},
			{"noise", experiments.AblationNoiseContext},
			{"predictor", experiments.AblationPredictorContext},
			{"sensing", experiments.AblationSensingContext},
			{"chemistry", experiments.AblationChemistryContext},
		} {
			r, err := study.run(ctx, pool("ablation/"+study.name))
			exit(err)
			r.Write(out)
			fmt.Fprintln(out)
		}
	}

	fmt.Fprintf(out, "total experiment time: %v\n", time.Since(start).Round(time.Second))
}

// exit aborts on error, reporting Ctrl-C distinctly from real failures.
func exit(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, runner.ErrCanceled) {
		log.Fatal("interrupted")
	}
	log.Fatal(err)
}
