// Command otem-experiments regenerates the paper's evaluation: every figure
// and table of §IV (Fig. 1, Fig. 6, Fig. 7, Fig. 8, Fig. 9, Table I).
//
// Usage:
//
//	otem-experiments                 # run everything
//	otem-experiments -run fig8,fig9  # selected experiments
//	otem-experiments -repeats 3      # cheaper Fig. 8/9 sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-experiments: ")

	var (
		run     = flag.String("run", "all", "comma-separated subset of: fig1,fig6,fig7,fig8,fig9,table1,hotspot,ablations ('all' = figures+table)")
		repeats = flag.Int("repeats", 3, "cycle repetitions for the Fig. 8/9 sweep")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool {
		if name == "ablations" {
			return want[name] // opt-in only; ~1 min of MPC runs
		}
		return all || want[name]
	}

	out := os.Stdout
	start := time.Now()

	if selected("fig1") {
		r, err := experiments.Fig1()
		if err != nil {
			log.Fatal(err)
		}
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig6") {
		r, err := experiments.Fig6()
		if err != nil {
			log.Fatal(err)
		}
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig7") {
		r, err := experiments.Fig7()
		if err != nil {
			log.Fatal(err)
		}
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("fig8") || selected("fig9") {
		sweep, err := experiments.Sweep(*repeats)
		if err != nil {
			log.Fatal(err)
		}
		if selected("fig8") {
			experiments.Fig8(sweep).Write(out)
			fmt.Fprintln(out)
		}
		if selected("fig9") {
			experiments.Fig9(sweep).Write(out)
			fmt.Fprintln(out)
		}
	}
	if selected("table1") {
		r, err := experiments.TableI()
		if err != nil {
			log.Fatal(err)
		}
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("hotspot") {
		r, err := experiments.Hotspot()
		if err != nil {
			log.Fatal(err)
		}
		r.Write(out)
		fmt.Fprintln(out)
	}
	if selected("ablations") {
		for _, run := range []func() (*experiments.AblationResult, error){
			experiments.AblationHorizon,
			experiments.AblationWeights,
			experiments.AblationNoise,
			experiments.AblationPredictor,
			experiments.AblationSensing,
			experiments.AblationChemistry,
		} {
			r, err := run()
			if err != nil {
				log.Fatal(err)
			}
			r.Write(out)
			fmt.Fprintln(out)
		}
	}

	fmt.Fprintf(out, "total experiment time: %v\n", time.Since(start).Round(time.Second))
}
