// Command otem-report regenerates the full paper-vs-measured record as a
// markdown document from live runs (the generated counterpart of
// EXPERIMENTS.md).
//
// Usage:
//
//	otem-report -repeats 3 -o report.md
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("otem-report: ")

	var (
		repeats = flag.Int("repeats", 3, "cycle repetitions for the Fig. 8/9 sweep")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if err := experiments.Report(w, *repeats); err != nil {
		log.Fatal(err)
	}
}
