package otem

import (
	"context"

	"repro/internal/runner"
)

// settings is the resolved option set shared by every run entry point in
// the package. Each entry point consumes the fields that make sense for it
// and ignores the rest, so any Option can be passed anywhere and the same
// slice of options composes across Simulate, RunBatch, ExploreDesigns,
// ProjectLifetime and RunFleet.
type settings struct {
	ctx         context.Context
	trace       bool
	horizon     int
	parallelism int
	fleetBatch  int
	progress    func(done, total int)
}

// newSettings applies the options over the defaults (background context,
// zero horizon = entry-point default, GOMAXPROCS parallelism).
func newSettings(opts []Option) settings {
	s := settings{ctx: context.Background()}
	for _, o := range opts {
		if o != nil {
			o.applyOption(&s)
		}
	}
	return s
}

// pool builds the bounded worker pool the settings describe, progress
// callback included — for entry points whose unit of progress is the pool
// job (RunBatch, ExploreDesigns).
func (s settings) pool() *runner.Pool {
	return runner.New(runner.Workers(s.parallelism), runner.Progress(s.progress))
}

// workerPool is pool without the progress wiring — for entry points that
// report progress in their own units (RunFleet reports vehicles, not
// chunks).
func (s settings) workerPool() *runner.Pool {
	return runner.New(runner.Workers(s.parallelism))
}

// Option tunes any of the package's run entry points. The one mechanism
// spans all of them:
//
//	WithContext(ctx)     cancellation     (all entry points)
//	WithTrace()          per-step traces  (Simulate)
//	WithHorizon(n)       forecast window  (Simulate, ProjectLifetime)
//	WithParallelism(n)   worker bound     (RunBatch, ExploreDesigns, RunFleet)
//	WithFleetBatch(n)    rollout width    (RunFleet)
//	WithProgress(fn)     completion ticks (RunBatch, ExploreDesigns, ProjectLifetime, RunFleet)
//
// Options outside an entry point's row are accepted and ignored, so one
// option slice can parameterise a whole pipeline. SimOption and
// BatchOption are the historical names for the same interface.
type Option interface {
	applyOption(*settings)
}

// SimOption is the historical name Simulate used for Option; they are the
// same interface.
type SimOption = Option

// BatchOption is the historical name RunBatch used for Option; they are
// the same interface.
type BatchOption = Option

type optionFunc func(*settings)

func (f optionFunc) applyOption(s *settings) { f(s) }

// WithTrace captures per-step signals into Result.Trace.
func WithTrace() Option {
	return optionFunc(func(s *settings) { s.trace = true })
}

// WithHorizon overrides the forecast window handed to the controller
// (default: the OTEM default horizon). Non-positive values are ignored.
func WithHorizon(n int) Option {
	return optionFunc(func(s *settings) {
		if n > 0 {
			s.horizon = n
		}
	})
}

// WithContext makes a run cooperatively cancelable: when ctx is canceled
// the run abandons with an error matching ErrCanceled. Entry points that
// take an explicit context argument (SimulateContext, RunBatch, RunFleet,
// …) use that argument and ignore this option.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(s *settings) {
		if ctx != nil {
			s.ctx = ctx
		}
	})
}

// WithParallelism bounds the number of concurrent jobs (batch specs, grid
// points, fleet chunks). Zero or negative selects the default, GOMAXPROCS.
func WithParallelism(n int) Option {
	return optionFunc(func(s *settings) { s.parallelism = n })
}

// WithFleetBatch selects RunFleet's rollout: 0 (the default) runs the
// structure-of-arrays batched rollout at its auto-tuned lane width, a
// positive n batches n vehicles per lockstep group, and a negative value
// forces the per-vehicle reference path. Outcomes are bit-identical across
// every setting — the batch width only changes throughput, never the
// digest — so it is safe to tune freely.
func WithFleetBatch(n int) Option {
	return optionFunc(func(s *settings) { s.fleetBatch = n })
}

// WithProgress registers a callback invoked as a run advances, with the
// units done so far and the total (specs for RunBatch, grid points for
// ExploreDesigns, routes for ProjectLifetime, vehicles for RunFleet).
// Calls are serialized and done is increasing, so the callback needs no
// locking.
func WithProgress(fn func(done, total int)) Option {
	return optionFunc(func(s *settings) { s.progress = fn })
}

// SimOptions tunes Simulate.
//
// Deprecated: pass functional options instead — WithTrace() for
// RecordTrace, WithHorizon(n) for Horizon. The struct satisfies Option so
// existing call sites keep working.
type SimOptions struct {
	// RecordTrace captures per-step signals into Result.Trace.
	RecordTrace bool
	// Horizon overrides the forecast window handed to the controller
	// (defaults to the OTEM default horizon).
	Horizon int
}

func (o SimOptions) applyOption(s *settings) {
	s.trace = o.RecordTrace
	if o.Horizon > 0 {
		s.horizon = o.Horizon
	}
}
