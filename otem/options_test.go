package otem_test

import (
	"context"
	"strings"
	"testing"

	"repro/otem"
)

// The canonical-encoding contract is shared by all four public spec
// types — a compile-time fact this block pins.
var (
	_ otem.CanonicalSpec = otem.RunSpec{}
	_ otem.CanonicalSpec = otem.DSEConfig{}
	_ otem.CanonicalSpec = otem.LifetimeConfig{}
	_ otem.CanonicalSpec = otem.FleetSpec{}
)

// TestCanonicalEncodings pins the versioned prefixes and checks that
// defaulting happens inside the encoding (a zero spec and its explicit
// defaults encode identically).
func TestCanonicalEncodings(t *testing.T) {
	cases := []struct {
		spec   otem.CanonicalSpec
		prefix string
	}{
		{otem.RunSpec{Method: otem.MethodologyOTEM, Cycle: "US06"}, "otem.run|"},
		{otem.DSEConfig{}, "otem.dse|"},
		{otem.LifetimeConfig{}, "otem.lifetime|"},
		{otem.FleetSpec{Vehicles: 10}, "otem.fleet|"},
	}
	for _, tc := range cases {
		got := otem.Canonical(tc.spec)
		if !strings.HasPrefix(got, tc.prefix) {
			t.Errorf("Canonical(%T) = %q, want prefix %q", tc.spec, got, tc.prefix)
		}
	}

	zero := otem.Canonical(otem.RunSpec{Method: otem.MethodologyParallel, Cycle: "NYCC"})
	expl := otem.Canonical(otem.RunSpec{Method: otem.MethodologyParallel, Cycle: "NYCC", Repeats: 1, UltracapF: 25000})
	if zero != expl {
		t.Errorf("zero-value defaults not canonicalised: %q vs %q", zero, expl)
	}
}

// TestOptionsComposeAcrossEntryPoints passes one option slice to several
// entry points: each consumes what applies to it and ignores the rest —
// the redesign's core contract.
func TestOptionsComposeAcrossEntryPoints(t *testing.T) {
	var batchTicks, fleetTicks int
	opts := []otem.Option{
		otem.WithTrace(),
		otem.WithHorizon(16),
		otem.WithParallelism(2),
		nil, // nil options are tolerated
	}

	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := otem.Baseline("parallel")
	if err != nil {
		t.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, []float64{10e3, 20e3, 5e3}, opts...)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Trace == nil {
		t.Error("Simulate ignored WithTrace from the shared slice")
	}

	specs := []otem.RunSpec{{Method: otem.MethodologyParallel, Cycle: "NYCC"}}
	batch, err := otem.RunBatch(context.Background(), specs,
		append(opts, otem.WithProgress(func(done, total int) { batchTicks = done }))...)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(batch) != 1 || batch[0].Err != nil {
		t.Fatalf("RunBatch result: %+v", batch)
	}
	if batchTicks != 1 {
		t.Errorf("RunBatch progress ticks = %d, want 1", batchTicks)
	}

	fleetSpec := otem.FleetSpec{Vehicles: 9, Seed: 3, Method: otem.MethodologyParallel, RouteSeconds: 120}
	fr, err := otem.RunFleet(context.Background(), fleetSpec,
		append(opts, otem.WithProgress(func(done, total int) { fleetTicks = done }))...)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if fr.Vehicles != 9 {
		t.Errorf("RunFleet vehicles = %d, want 9", fr.Vehicles)
	}
	if fleetTicks != 9 {
		t.Errorf("RunFleet progress reached %d, want 9", fleetTicks)
	}
}

// TestDeprecatedSimOptionsShim: the legacy struct still satisfies the
// unified Option interface (and therefore SimOption, its alias).
func TestDeprecatedSimOptionsShim(t *testing.T) {
	var _ otem.Option = otem.SimOptions{}
	var _ otem.SimOption = otem.SimOptions{}

	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := otem.Baseline("parallel")
	if err != nil {
		t.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, []float64{10e3, 20e3},
		otem.SimOptions{RecordTrace: true, Horizon: 8})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Trace == nil {
		t.Error("SimOptions shim lost RecordTrace")
	}
}

// TestProjectLifetimeOptions: the lifetime entry point consumes context,
// horizon and progress from the same option family.
func TestProjectLifetimeOptions(t *testing.T) {
	requests := []float64{20e3, 40e3, 30e3, 10e3}
	var ticks int
	proj, err := otem.ProjectLifetime(otem.PlantConfig{},
		func() (otem.Controller, error) { return otem.Baseline("parallel") },
		requests,
		otem.LifetimeConfig{MaxRoutes: 500, BlockRoutes: 250},
		otem.WithHorizon(8),
		otem.WithProgress(func(done, total int) {
			ticks++
			if total != 500 {
				t.Errorf("progress total = %d, want 500", total)
			}
		}),
	)
	if err != nil {
		t.Fatalf("ProjectLifetime: %v", err)
	}
	if proj.RoutesToEOL == 0 {
		t.Error("projection did not advance")
	}
	if ticks == 0 {
		t.Error("WithProgress never ticked")
	}
}
