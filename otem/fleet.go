package otem

import (
	"context"

	"repro/internal/canon"
	"repro/internal/fleet"
)

// Fleet types, aliased from the implementation package so their documented
// fields and methods are part of the public API.
type (
	// FleetSpec describes a Monte Carlo fleet run (size, seed, methodology,
	// per-vehicle route shape). The zero value of every optional field is
	// completed with the documented default.
	FleetSpec = fleet.Spec
	// FleetResult aggregates a fleet run into streaming quantile sketches
	// and per-scenario-family breakdowns.
	FleetResult = fleet.Result
	// FleetFamilyResult is one scenario family's share of a FleetResult.
	FleetFamilyResult = fleet.FamilyResult
	// QuantileSketch is the deterministic streaming quantile summary the
	// fleet results are made of (Quantile, Mean, Min, Max, ErrorBound).
	QuantileSketch = fleet.Sketch
)

// FleetFamilyNames lists every scenario family ("usage/climate") in the
// order FleetResult.Families uses.
func FleetFamilyNames() []string { return fleet.FamilyNames() }

// RunFleet steps Spec.Vehicles simulated vehicles through seeded
// stochastic scenarios — synthesized daily routes, climate-band ambients,
// plug-in/vacation day sequences — and aggregates per-vehicle capacity
// loss, energy and peak temperature into quantile sketches, in O(workers)
// memory regardless of fleet size.
//
// The rollout is batched by default: vehicles advance in lockstep groups
// over structure-of-arrays state (see WithFleetBatch), which is
// bit-identical to the per-vehicle path at any width and worker count.
//
// Determinism: the same spec (seed included) produces a bit-identical
// result at any parallelism and batch width. RunFleet consumes the
// WithParallelism, WithFleetBatch and WithProgress options (progress ticks
// are vehicles); the explicit context wins over WithContext. A nil ctx
// means context.Background().
func RunFleet(ctx context.Context, spec FleetSpec, opts ...Option) (*FleetResult, error) {
	s := newSettings(opts)
	if ctx == nil {
		ctx = s.ctx
	}
	return fleet.RunWith(ctx, spec, fleet.Options{
		Pool:     s.workerPool(),
		Progress: s.progress,
		Batch:    s.fleetBatch,
	})
}

// CanonicalSpec is the canonical-encoding contract shared by RunSpec,
// DSEConfig, LifetimeConfig and FleetSpec: a stable, self-describing
// encoding of every outcome-determining field. Serve cache keys, CLI JSON
// output and fleet digests all derive from it.
type CanonicalSpec = canon.Spec

// Canonical renders a specification's canonical encoding — the string the
// otem-serve result cache keys on.
func Canonical(s CanonicalSpec) string { return canon.String(s) }
