package otem

import (
	"context"

	"repro/internal/hmpc"
	"repro/internal/sim"
)

// Hierarchical (two-layer) MPC types, aliased from the implementation
// package so their documented fields and methods are part of the public
// API.
type (
	// PlanSpec describes one hierarchical run: the route (a registered
	// cycle or a synthesized fleet-class realization), the plant and the
	// two-layer geometry. Zero fields take the documented defaults;
	// tunables with nonzero defaults (tracking weights, divergence
	// tolerances) treat a negative value as the explicit off switch.
	PlanSpec = hmpc.Spec
	// Plan is the outer scheduling layer's solution for a route: the
	// block-boundary SoC/SoE/temperature reference trajectories plus the
	// coarse decisions. It is a pure function of its PlanSpec, which is
	// what makes the otem-serve /v1/plan endpoint cacheable.
	Plan = hmpc.Plan
	// HierarchicalResult is the summary of one two-layer simulated route:
	// the flat Result fields plus the route-start Plan and the per-layer
	// replan counters.
	HierarchicalResult = hmpc.Result
)

// ErrBadPlanSpec reports a PlanSpec that fails validation (out-of-range
// geometry, unknown usage class); errors.Is matches it through any
// wrapping PlanRoute and SimulateHierarchical apply.
var ErrBadPlanSpec = hmpc.ErrBadSpec

// PlanRoute solves only the outer scheduling layer of the two-layer
// hierarchical MPC (arXiv 1809.10002): a coarse block-grid OTEM instance
// over the route preview, whose predicted trajectory becomes the tracking
// reference for the fast inner controller. The returned Plan is
// deterministic in the spec — the same spec always yields the same plan —
// so it can be computed once per route and cached (POST /v1/plan does
// exactly that, keyed on Canonical(spec)).
func PlanRoute(spec PlanSpec) (*Plan, error) { return hmpc.PlanRoute(spec) }

// SimulateHierarchical runs the full two-layer controller over the spec's
// route: the outer planner schedules block-averaged SoC and pack-
// temperature references from the route preview, and the inner OTEM
// tracks them, re-planning early when the realized state diverges.
//
// With the outer layer collapsed to a single block and every tracking
// weight and tolerance negative (explicitly off), the hierarchical run is
// bit-identical to the flat Simulate with the default OTEM controller —
// the property test in this package pins that on every registered cycle.
//
// It consumes the WithTrace, WithHorizon and WithContext options; the
// explicit context wins over WithContext. A nil ctx means
// context.Background().
func SimulateHierarchical(ctx context.Context, spec PlanSpec, opts ...Option) (*HierarchicalResult, error) {
	s := newSettings(opts)
	if ctx == nil {
		ctx = s.ctx
	}
	return hmpc.Run(ctx, spec, sim.Config{RecordTrace: s.trace, Horizon: s.horizon})
}
