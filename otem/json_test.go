package otem_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/otem"
)

var updateGolden = flag.Bool("update", false, "rewrite the JSON-schema golden files")

// goldenRun produces a small deterministic traced run for the schema
// tests: a fixed 8-step request profile through the passive-parallel
// baseline on a default plant. Everything here is pure, so the encoded
// bytes must be bit-identical on every platform and at every parallelism.
func goldenRun(t *testing.T) otem.Result {
	t.Helper()
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatalf("NewPlant: %v", err)
	}
	ctrl, err := otem.Baseline("parallel")
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	requests := []float64{12e3, 30e3, 45e3, 60e3, 20e3, -15e3, -5e3, 8e3}
	res, err := otem.Simulate(plant, ctrl, requests, otem.WithTrace())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

// TestResultJSONGolden pins the wire schema: field set, json tags, value
// formatting and the schema version string. A diff here is a wire-format
// break — if it is intentional, bump ResultSchemaVersion and regenerate
// with `go test ./otem -run ResultJSONGolden -update`.
func TestResultJSONGolden(t *testing.T) {
	res := goldenRun(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(otem.EncodeResult(res)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	path := filepath.Join("testdata", "result_v1.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stable JSON schema drifted from golden file %s\n-- got --\n%s\n-- want --\n%s",
			path, buf.Bytes(), want)
	}
}

// TestEncodeResultSchemaInvariants checks the parts of the contract a
// golden file cannot: the version constant, trace omission without
// tracing, and column alignment with tracing.
func TestEncodeResultSchemaInvariants(t *testing.T) {
	res := goldenRun(t)
	wire := otem.EncodeResult(res)
	if wire.Schema != otem.ResultSchemaVersion {
		t.Errorf("Schema = %q, want %q", wire.Schema, otem.ResultSchemaVersion)
	}
	if len(wire.Trace) != res.Steps {
		t.Errorf("len(Trace) = %d, want Steps = %d", len(wire.Trace), res.Steps)
	}

	res.Trace = nil
	raw, err := json.Marshal(otem.EncodeResult(res))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Errorf("trace key present without tracing: %s", raw)
	}

	// The wire struct must round-trip through its own tags losslessly.
	var back otem.ResultJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, jsonNoTrace(wire)) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, wire)
	}
}

// jsonNoTrace strips the trace so the struct is comparable with ==.
func jsonNoTrace(w otem.ResultJSON) otem.ResultJSON {
	w.Trace = nil
	return w
}

// TestEncodeTraceNil pins nil-in nil-out.
func TestEncodeTraceNil(t *testing.T) {
	if got := otem.EncodeTrace(nil); got != nil {
		t.Errorf("EncodeTrace(nil) = %v, want nil", got)
	}
}
