package otem_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/otem"
)

// goldenFleetSpec is a small deterministic fleet for the schema tests:
// tiny enough to run in milliseconds, large enough to populate several
// scenario families.
func goldenFleetSpec() otem.FleetSpec {
	return otem.FleetSpec{
		Vehicles:     24,
		Days:         2,
		Seed:         7,
		Method:       otem.MethodologyParallel,
		RouteSeconds: 120,
	}
}

// TestFleetJSONGolden pins the otem.fleet/v1 wire schema: field set, json
// tags, value formatting and the schema version string. A diff here is a
// wire-format break — if it is intentional, bump FleetSchemaVersion and
// regenerate with `go test ./otem -run FleetJSONGolden -update`.
func TestFleetJSONGolden(t *testing.T) {
	res, err := otem.RunFleet(context.Background(), goldenFleetSpec())
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(otem.EncodeFleet(res)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	path := filepath.Join("testdata", "fleet_v1.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stable JSON schema drifted from golden file %s\n-- got --\n%s\n-- want --\n%s",
			path, buf.Bytes(), want)
	}
}

// TestFleetJSONParallelIdentity is the facade-level determinism gate of
// the issue: the encoded otem.fleet/v1 bytes must be identical at
// parallelism 1 and NumCPU.
func TestFleetJSONParallelIdentity(t *testing.T) {
	spec := goldenFleetSpec()
	encode := func(workers int) []byte {
		t.Helper()
		res, err := otem.RunFleet(context.Background(), spec, otem.WithParallelism(workers))
		if err != nil {
			t.Fatalf("RunFleet(%d workers): %v", workers, err)
		}
		raw, err := json.Marshal(otem.EncodeFleet(res))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return raw
	}
	seq, par := encode(1), encode(runtime.NumCPU())
	if !bytes.Equal(seq, par) {
		t.Errorf("otem.fleet/v1 bytes differ across worker counts:\n seq %s\n par %s", seq, par)
	}
}

// TestEncodeFleetSchemaInvariants checks what the golden file cannot: the
// version constant, spec/digest linkage, family ordering and lossless
// round-tripping through the json tags.
func TestEncodeFleetSchemaInvariants(t *testing.T) {
	spec := goldenFleetSpec()
	res, err := otem.RunFleet(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	wire := otem.EncodeFleet(res)
	if wire.Schema != otem.FleetSchemaVersion {
		t.Errorf("Schema = %q, want %q", wire.Schema, otem.FleetSchemaVersion)
	}
	if wire.Spec != otem.Canonical(spec) {
		t.Errorf("Spec = %q, want the canonical encoding %q", wire.Spec, otem.Canonical(spec))
	}
	if wire.Digest != res.Digest() {
		t.Errorf("Digest = %q, want %q", wire.Digest, res.Digest())
	}
	names := otem.FleetFamilyNames()
	if len(wire.Families) != len(names) {
		t.Fatalf("families = %d, want %d", len(wire.Families), len(names))
	}
	for i, f := range wire.Families {
		if f.Family != names[i] {
			t.Errorf("family[%d] = %q, want %q", i, f.Family, names[i])
		}
	}

	raw, err := json.Marshal(wire)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back otem.FleetResultJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, wire) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, wire)
	}
}
