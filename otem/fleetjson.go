package otem

// This file defines the stable wire schema for fleet results, following
// the otem.result/v1 discipline in json.go: cmd/otem-sim -fleet -json and
// the otem-serve /v1/fleet endpoint both emit FleetResultJSON, so the
// schema cannot drift between surfaces. The field set, the json tags and
// the Schema version string are covered by a golden-file test; changing
// any of them is a wire-format break and must bump FleetSchemaVersion.

// FleetSchemaVersion identifies the wire format emitted by EncodeFleet.
const FleetSchemaVersion = "otem.fleet/v1"

// fleetQuantiles are the distribution probe points every sketch is
// rendered at on the wire.
var fleetQuantiles = []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}

// QuantilesJSON is the wire rendering of one quantile sketch: summary
// moments, the standard probe points and the sketch's own worst-case rank
// error certificate.
type QuantilesJSON struct {
	// Count is how many values the distribution summarises.
	Count uint64 `json:"count"`
	// Mean, Min and Max are exact (tracked outside the sketch).
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// P05..P95 are sketch quantiles at φ = 0.05, 0.25, 0.5, 0.75, 0.95.
	P05 float64 `json:"p05"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
	// MaxRankError is the sketch's worst-case rank error certificate: each
	// reported quantile is within this many ranks of the exact one.
	MaxRankError uint64 `json:"max_rank_error"`
}

// FleetFamilyJSON is one scenario family's share of the fleet.
type FleetFamilyJSON struct {
	// Family is the "usage/climate" label.
	Family string `json:"family"`
	// Vehicles counts fleet members that drew this family.
	Vehicles uint64 `json:"vehicles"`
	// QlossPct is the capacity-loss distribution within the family.
	QlossPct QuantilesJSON `json:"qloss_pct"`
}

// FleetResultJSON is the stable JSON encoding of a FleetResult. The
// distributions are per-vehicle totals over the simulated horizon; unit-
// bearing fields carry the unit in the name.
type FleetResultJSON struct {
	// Schema is always FleetSchemaVersion.
	Schema string `json:"schema"`
	// Spec is the canonical encoding of the (defaulted) specification that
	// produced the result — the same string the serve cache keys on.
	Spec string `json:"spec"`
	// Digest fingerprints the complete result state: two runs of the same
	// spec produce the same digest at any parallelism.
	Digest string `json:"digest"`
	// Vehicles and Days echo the fleet shape; Steps is the total number of
	// simulated drive steps across the fleet.
	Vehicles int    `json:"vehicles"`
	Days     int    `json:"days"`
	Steps    uint64 `json:"steps"`
	// QlossPct distributes per-vehicle capacity loss (percent of rated).
	QlossPct QuantilesJSON `json:"qloss_pct"`
	// EnergyJoule distributes per-vehicle total energy (driving + wall).
	EnergyJoule QuantilesJSON `json:"energy_joule"`
	// PeakTempKelvin distributes per-vehicle peak battery temperature.
	PeakTempKelvin QuantilesJSON `json:"peak_temp_kelvin"`
	// Families breaks QlossPct down by scenario family, fixed order.
	Families []FleetFamilyJSON `json:"families"`
	// FallbackSteps counts infeasible-action fallbacks across the fleet.
	FallbackSteps uint64 `json:"fallback_steps"`
	// ThermalViolationSeconds sums constraint-C1 violation time.
	ThermalViolationSeconds float64 `json:"thermal_violation_seconds"`
}

// encodeSketch renders a sketch at the standard probe points.
func encodeSketch(s *QuantileSketch) QuantilesJSON {
	q := QuantilesJSON{
		Count:        s.Count(),
		Mean:         s.Mean(),
		Min:          s.Min(),
		Max:          s.Max(),
		MaxRankError: s.ErrorBound(),
	}
	if s.Count() == 0 {
		// Empty sketches report zeros, not ±Inf extrema (JSON has no Inf).
		q.Min, q.Max = 0, 0
		return q
	}
	q.P05 = s.Quantile(fleetQuantiles[1])
	q.P25 = s.Quantile(fleetQuantiles[2])
	q.P50 = s.Quantile(fleetQuantiles[3])
	q.P75 = s.Quantile(fleetQuantiles[4])
	q.P95 = s.Quantile(fleetQuantiles[5])
	return q
}

// EncodeFleet converts a FleetResult into the stable wire schema.
func EncodeFleet(r *FleetResult) FleetResultJSON {
	out := FleetResultJSON{
		Schema:                  FleetSchemaVersion,
		Spec:                    Canonical(r.Spec),
		Digest:                  r.Digest(),
		Vehicles:                r.Vehicles,
		Days:                    r.Days,
		Steps:                   r.Steps,
		QlossPct:                encodeSketch(r.Qloss),
		EnergyJoule:             encodeSketch(r.EnergyJ),
		PeakTempKelvin:          encodeSketch(r.PeakTempK),
		FallbackSteps:           r.FallbackSteps,
		ThermalViolationSeconds: r.ThermalViolationSec,
	}
	for _, f := range r.Families {
		out.Families = append(out.Families, FleetFamilyJSON{
			Family:   f.Name,
			Vehicles: f.Vehicles,
			QlossPct: encodeSketch(f.Qloss),
		})
	}
	return out
}
