package otem

// This file defines the stable wire schema for outer plans, following the
// otem.result/v1 discipline in json.go: cmd/otem-sim -hmpc -json and the
// otem-serve POST /v1/plan endpoint both emit PlanJSON, so the schema
// cannot drift between surfaces. The field set, the json tags and the
// Schema version string are covered by a golden-file test; changing any of
// them is a wire-format break and must bump PlanSchemaVersion.

// PlanSchemaVersion identifies the wire format emitted by EncodePlan.
const PlanSchemaVersion = "otem.plan/v1"

// PlanJSON is the stable JSON encoding of a Plan: the outer scheduling
// layer's block-boundary reference trajectories and coarse decisions for
// one route. Unit-bearing fields carry the unit in the name; fractions
// (SoC/SoE) are 0..1.
type PlanJSON struct {
	// Schema is always PlanSchemaVersion.
	Schema string `json:"schema"`
	// Spec is the canonical encoding of the (defaulted) PlanSpec that
	// produced the plan — the same string the serve plan cache keys on.
	Spec string `json:"spec"`
	// BlockSeconds is the coarse-grid block length; Blocks the outer
	// horizon; Steps the number of inner steps the plan covers.
	BlockSeconds float64 `json:"block_seconds"`
	Blocks       int     `json:"blocks"`
	Steps        int     `json:"steps"`
	// SoC, SoE and TempKelvin are the block-boundary state trajectories,
	// length Blocks+1: the initial state followed by each block-end state.
	SoC        []float64 `json:"soc"`
	SoE        []float64 `json:"soe"`
	TempKelvin []float64 `json:"temp_kelvin"`
	// CapU and CoolU are the coarse decisions per block, length Blocks:
	// normalised ultracapacitor bus power in [-1, 1] and cooling intensity
	// in [0, 1].
	CapU  []float64 `json:"cap_u"`
	CoolU []float64 `json:"cool_u"`
}

// EncodePlan converts a Plan into the stable wire schema.
func EncodePlan(p *Plan) PlanJSON {
	return PlanJSON{
		Schema:       PlanSchemaVersion,
		Spec:         p.Spec,
		BlockSeconds: p.BlockSeconds,
		Blocks:       p.Blocks,
		Steps:        p.Steps,
		SoC:          p.SoC,
		SoE:          p.SoE,
		TempKelvin:   p.TempK,
		CapU:         p.CapU,
		CoolU:        p.CoolU,
	}
}
