package otem_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/drivecycle"
	"repro/otem"
)

// goldenPlanSpec is a small deterministic route for the plan schema tests:
// a registered cycle so no synthesis is involved, hot enough that the
// cooling decisions are non-trivial.
func goldenPlanSpec() otem.PlanSpec {
	return otem.PlanSpec{Cycle: "NYCC", AmbientK: 308}
}

// TestPlanJSONGolden pins the otem.plan/v1 wire schema: field set, json
// tags, value formatting and the schema version string. A diff here is a
// wire-format break — if it is intentional, bump PlanSchemaVersion and
// regenerate with `go test ./otem -run PlanJSONGolden -update`.
func TestPlanJSONGolden(t *testing.T) {
	plan, err := otem.PlanRoute(goldenPlanSpec())
	if err != nil {
		t.Fatalf("PlanRoute: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(otem.EncodePlan(plan)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	path := filepath.Join("testdata", "plan_v1.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stable JSON schema drifted from golden file %s\n-- got --\n%s\n-- want --\n%s",
			path, buf.Bytes(), want)
	}
}

// TestEncodePlanSchemaInvariants checks what the golden file cannot: the
// version constant, the spec linkage that makes the plan cacheable,
// geometry consistency and lossless round-tripping through the json tags.
func TestEncodePlanSchemaInvariants(t *testing.T) {
	spec := goldenPlanSpec()
	plan, err := otem.PlanRoute(spec)
	if err != nil {
		t.Fatalf("PlanRoute: %v", err)
	}
	wire := otem.EncodePlan(plan)
	if wire.Schema != otem.PlanSchemaVersion {
		t.Errorf("Schema = %q, want %q", wire.Schema, otem.PlanSchemaVersion)
	}
	if wire.Spec != otem.Canonical(spec) {
		t.Errorf("Spec = %q, want the canonical encoding %q", wire.Spec, otem.Canonical(spec))
	}
	if len(wire.SoC) != wire.Blocks+1 || len(wire.SoE) != wire.Blocks+1 ||
		len(wire.TempKelvin) != wire.Blocks+1 ||
		len(wire.CapU) != wire.Blocks || len(wire.CoolU) != wire.Blocks {
		t.Errorf("trajectory/decision lengths inconsistent with Blocks=%d: soc=%d soe=%d temp=%d capU=%d coolU=%d",
			wire.Blocks, len(wire.SoC), len(wire.SoE), len(wire.TempKelvin), len(wire.CapU), len(wire.CoolU))
	}

	raw, err := json.Marshal(wire)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back otem.PlanJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, wire) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, wire)
	}
}

// TestPlanRouteDeterministic is the cacheability contract of POST
// /v1/plan: the same spec always yields the same plan, byte for byte.
func TestPlanRouteDeterministic(t *testing.T) {
	a, err := otem.PlanRoute(goldenPlanSpec())
	if err != nil {
		t.Fatalf("PlanRoute: %v", err)
	}
	b, err := otem.PlanRoute(goldenPlanSpec())
	if err != nil {
		t.Fatalf("PlanRoute: %v", err)
	}
	ra, _ := json.Marshal(otem.EncodePlan(a))
	rb, _ := json.Marshal(otem.EncodePlan(b))
	if !bytes.Equal(ra, rb) {
		t.Errorf("plans for identical specs differ:\n%s\n%s", ra, rb)
	}
}

// collapsedSpec disables the two-layer machinery for a cycle: a single
// outer block, tracking weights and every divergence tolerance explicitly
// off (negative). Under it the inner controller must behave exactly like
// the flat default OTEM.
func collapsedSpec(cycle string) otem.PlanSpec {
	return otem.PlanSpec{
		Cycle:        cycle,
		BlockSeconds: 40,
		MaxBlocks:    1,
		SoCRefWeight: -1, TempRefWeight: -1,
		SoCTol: -1, TempTolK: -1,
		OuterSoCTol: -1, OuterTempTolK: -1,
	}
}

// TestHierarchicalCollapsesToFlat is the issue's bit-identity property:
// with the outer layer collapsed to a single block and zero-weight
// tracking, SimulateHierarchical must reproduce the flat Simulate result
// exactly — every numeric Result field bit-identical — on every registered
// drive cycle. This pins that the tracking terms, the reference plumbing
// and the divergence triggers are true no-ops when disabled, so the
// hierarchical controller is a strict extension of the flat one.
func TestHierarchicalCollapsesToFlat(t *testing.T) {
	for _, name := range drivecycle.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			requests, err := otem.PowerSeriesAt(name, 1, 298)
			if err != nil {
				t.Fatalf("PowerSeriesAt: %v", err)
			}
			cycle, err := otem.CycleByName(name)
			if err != nil {
				t.Fatalf("CycleByName: %v", err)
			}
			plant, err := otem.NewPlant(otem.PlantConfig{UltracapF: 25000, Ambient: 298, DT: cycle.DT})
			if err != nil {
				t.Fatalf("NewPlant: %v", err)
			}
			ctrl, err := otem.New(otem.Config{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			flat, err := otem.Simulate(plant, ctrl, requests)
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}

			hier, err := otem.SimulateHierarchical(context.Background(), collapsedSpec(name))
			if err != nil {
				t.Fatalf("SimulateHierarchical: %v", err)
			}
			got := hier.Result
			// The controller label is the one legitimate difference.
			if got.Controller != "HMPC" || flat.Controller != "OTEM" {
				t.Fatalf("controller names %q / %q", got.Controller, flat.Controller)
			}
			got.Controller = flat.Controller
			//lint:ignore floatcompare the collapsed hierarchical run must be bit-identical, not merely close
			if got != flat {
				t.Errorf("collapsed hierarchical run differs from flat:\n got %+v\nwant %+v", got, flat)
			}
		})
	}
}
