package otem

import (
	"context"
	"errors"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// BatchResult pairs one RunSpec of a batch with its outcome. Exactly one
// of Result and Err is meaningful: Err is non-nil when that spec failed
// (the rest of the batch still ran).
type BatchResult struct {
	// Spec echoes the specification this result belongs to.
	Spec RunSpec
	// Result is the route summary when the run succeeded.
	Result Result
	// Err is the per-spec failure, nil on success.
	Err error
}

// RunBatch executes the specs concurrently on a bounded worker pool and
// returns one BatchResult per spec, in spec order — the ordering (and the
// numbers) are independent of the parallelism. A failing spec records its
// error in its BatchResult.Err and the rest of the batch continues; the
// batch-level error is non-nil only when ctx was canceled, in which case
// it matches ErrCanceled (and ctx.Err()) via errors.Is and the returned
// slice is nil.
func RunBatch(ctx context.Context, specs []RunSpec, opts ...BatchOption) ([]BatchResult, error) {
	pool := newSettings(opts).pool()
	return runner.Map(ctx, pool, len(specs),
		func(ctx context.Context, i int) (BatchResult, error) {
			br := BatchResult{Spec: specs[i]}
			br.Result, br.Err = experiments.RunContext(ctx, specs[i])
			if br.Err != nil && errors.Is(br.Err, ErrCanceled) {
				// Cancellation is a batch-level outcome, not a per-spec one.
				return br, br.Err
			}
			return br, nil
		})
}
