package otem

import (
	"context"
	"errors"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// BatchResult pairs one RunSpec of a batch with its outcome. Exactly one
// of Result and Err is meaningful: Err is non-nil when that spec failed
// (the rest of the batch still ran).
type BatchResult struct {
	// Spec echoes the specification this result belongs to.
	Spec RunSpec
	// Result is the route summary when the run succeeded.
	Result Result
	// Err is the per-spec failure, nil on success.
	Err error
}

// batchSettings is the resolved option set of one batch call.
type batchSettings struct {
	parallelism int
	progress    func(done, total int)
}

func newBatchSettings(opts []BatchOption) batchSettings {
	var s batchSettings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// pool builds the worker pool the settings describe.
func (s batchSettings) pool() *runner.Pool {
	return runner.New(runner.Workers(s.parallelism), runner.Progress(s.progress))
}

// BatchOption tunes RunBatch and ExploreDesignsContext.
type BatchOption func(*batchSettings)

// WithParallelism bounds the number of specs simulated concurrently.
// Zero or negative selects the default, GOMAXPROCS.
func WithParallelism(n int) BatchOption {
	return func(s *batchSettings) { s.parallelism = n }
}

// WithProgress registers a callback invoked after each spec completes,
// with the number done so far and the batch total. Calls are serialized
// and done is strictly increasing, so the callback needs no locking.
func WithProgress(fn func(done, total int)) BatchOption {
	return func(s *batchSettings) { s.progress = fn }
}

// RunBatch executes the specs concurrently on a bounded worker pool and
// returns one BatchResult per spec, in spec order — the ordering (and the
// numbers) are independent of the parallelism. A failing spec records its
// error in its BatchResult.Err and the rest of the batch continues; the
// batch-level error is non-nil only when ctx was canceled, in which case
// it matches ErrCanceled (and ctx.Err()) via errors.Is and the returned
// slice is nil.
func RunBatch(ctx context.Context, specs []RunSpec, opts ...BatchOption) ([]BatchResult, error) {
	pool := newBatchSettings(opts).pool()
	return runner.Map(ctx, pool, len(specs),
		func(ctx context.Context, i int) (BatchResult, error) {
			br := BatchResult{Spec: specs[i]}
			br.Result, br.Err = experiments.RunContext(ctx, specs[i])
			if br.Err != nil && errors.Is(br.Err, ErrCanceled) {
				// Cancellation is a batch-level outcome, not a per-spec one.
				return br, br.Err
			}
			return br, nil
		})
}
