// Package otem is the public API of the OTEM reproduction: optimized
// thermal and energy management for hybrid electrical energy storage in
// electric vehicles (Vatanparvar & Al Faruque, DATE 2016).
//
// The package re-exports the stable surface of the internal packages:
//
//   - construct a plant (battery pack + ultracapacitor + converters +
//     active cooling loop) with NewPlant,
//   - construct the OTEM model-predictive controller with New, or a
//     state-of-the-art baseline with Baseline,
//   - obtain EV power-request series from standard drive cycles with
//     PowerSeries,
//   - simulate a route with Simulate, or run a canned paper experiment
//     with Run.
//
// A minimal session:
//
//	requests, _ := otem.PowerSeries("US06", 5)
//	plant, _ := otem.NewPlant(otem.PlantConfig{})
//	ctrl, _ := otem.New(otem.DefaultConfig())
//	res, _ := otem.Simulate(plant, ctrl, requests)
//	fmt.Println(res.QlossPct, res.AvgPowerW)
package otem

import (
	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Core types, aliased from the implementation packages so their documented
// fields and methods are part of the public API.
type (
	// Config tunes the OTEM controller (horizon, Eq. 19 weights, …).
	Config = core.Config
	// OTEM is the model-predictive controller (implements Controller).
	OTEM = core.OTEM
	// PlantConfig selects the experimental system (pack topology,
	// ultracapacitor size, initial conditions).
	PlantConfig = sim.PlantConfig
	// Plant is the simulated physical system.
	Plant = sim.Plant
	// Controller is the driving-time decision interface shared by OTEM and
	// the baselines.
	Controller = sim.Controller
	// Result summarises one simulated route (Algorithm 1 outputs).
	Result = sim.Result
	// Trace holds per-step signals when tracing is enabled.
	Trace = sim.Trace
	// RunSpec names a canned experiment run (methodology × cycle × size).
	RunSpec = experiments.RunSpec
	// VehicleParams is the EV road-load model used to derive power requests.
	VehicleParams = vehicle.Params
)

// DefaultConfig returns the controller configuration used for the paper
// experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// New constructs the OTEM controller. A zero Config selects DefaultConfig.
func New(cfg Config) (*OTEM, error) { return core.New(cfg) }

// NewPlant builds a plant; zero fields of the config take the paper's
// experimental defaults (96S24P NCR18650A pack, 25 kF bank, 298 K).
func NewPlant(cfg PlantConfig) (*Plant, error) { return sim.NewPlant(cfg) }

// Baseline constructs one of the paper's comparison methodologies by name:
// "parallel", "cooling", "dual" or "battery".
func Baseline(name string) (Controller, error) { return policy.ByName(name) }

// MidSizeEV returns the road-load parameters of the experiments' vehicle.
func MidSizeEV() VehicleParams { return vehicle.MidSizeEV() }

// PowerSeries returns the bus power-request series for a named standard
// drive cycle ("US06", "UDDS", "HWFET", "NYCC", "LA92", "SC03") repeated
// the given number of times, using the MidSizeEV road-load model.
func PowerSeries(cycleName string, repeats int) ([]float64, error) {
	c, err := drivecycle.ByName(cycleName)
	if err != nil {
		return nil, err
	}
	if repeats > 1 {
		c = c.Repeat(repeats)
	}
	return vehicle.MidSizeEV().PowerSeries(c), nil
}

// SimOptions tunes Simulate.
type SimOptions struct {
	// RecordTrace captures per-step signals into Result.Trace.
	RecordTrace bool
	// Horizon overrides the forecast window handed to the controller
	// (defaults to the OTEM default horizon).
	Horizon int
}

// Simulate runs the power-request series through the plant under the given
// controller (the paper's Algorithm 1) and returns the route summary. The
// plant is mutated in place.
func Simulate(plant *Plant, ctrl Controller, requests []float64, opts ...SimOptions) (Result, error) {
	cfg := sim.Config{Horizon: core.DefaultConfig().Horizon}
	if len(opts) > 0 {
		cfg.RecordTrace = opts[0].RecordTrace
		if opts[0].Horizon > 0 {
			cfg.Horizon = opts[0].Horizon
		}
	}
	return sim.Run(plant, ctrl, requests, cfg)
}

// Run executes one canned experiment specification (fresh default plant and
// vehicle), as used by the paper-reproduction suite.
func Run(spec RunSpec) (Result, error) { return experiments.Run(spec) }

// CycleNames lists the available standard drive cycles.
func CycleNames() []string { return drivecycle.Names() }

// Cycle is a speed-versus-time trace; obtain standard ones with CycleByName
// or build custom ones with Synthesize.
type Cycle = drivecycle.Cycle

// SynthConfig parameterises the random micro-trip cycle synthesiser.
type SynthConfig = drivecycle.SynthConfig

// CycleByName returns a standard drive cycle ("US06", "UDDS", …).
func CycleByName(name string) (*Cycle, error) { return drivecycle.ByName(name) }

// Synthesize generates a deterministic random drive cycle from the
// configuration (see DefaultSynthConfig).
func Synthesize(cfg SynthConfig) (*Cycle, error) { return drivecycle.Synthesize(cfg) }

// DefaultSynthConfig returns a moderate suburban synthesis profile for the
// given seed.
func DefaultSynthConfig(seed int64) SynthConfig { return drivecycle.DefaultSynthConfig(seed) }

// PowerSeriesFor converts any cycle into a bus power-request series with
// the MidSizeEV road-load model.
func PowerSeriesFor(c *Cycle) []float64 { return vehicle.MidSizeEV().PowerSeries(c) }

// PowerSeriesAt is PowerSeries at an explicit ambient temperature (kelvin):
// the vehicle's HVAC load for that climate is added to every sample.
func PowerSeriesAt(cycleName string, repeats int, ambientK float64) ([]float64, error) {
	c, err := drivecycle.ByName(cycleName)
	if err != nil {
		return nil, err
	}
	if repeats > 1 {
		c = c.Repeat(repeats)
	}
	return vehicle.MidSizeEV().PowerSeriesAt(c, ambientK), nil
}

// LifetimeConfig tunes a routes-to-end-of-life projection.
type LifetimeConfig = lifetime.Config

// LifetimeProjection is the outcome of ProjectLifetime.
type LifetimeProjection = lifetime.Projection

// ProjectLifetime projects the battery to end of life (20 % capacity loss)
// driving the given request series repeatedly under a controller built by
// newController, carrying capacity fade and impedance growth forward.
func ProjectLifetime(plantCfg PlantConfig, newController func() (Controller, error), requests []float64, cfg LifetimeConfig) (*LifetimeProjection, error) {
	return lifetime.Project(
		lifetime.DefaultPlantFactory(plantCfg),
		func() (sim.Controller, error) { return newController() },
		requests, cfg)
}

// DSEConfig tunes a design-space exploration; DSEResult carries the grid
// and its Pareto frontier.
type (
	DSEConfig = dse.Config
	DSEResult = dse.Result
)

// ExploreDesigns sweeps ultracapacitor size × cooler capacity under the
// OTEM controller and extracts the cost-vs-capacity-loss Pareto frontier —
// the design-space exploration the paper defers to future work.
func ExploreDesigns(cfg DSEConfig) (*DSEResult, error) { return dse.Explore(cfg) }
