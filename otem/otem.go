package otem

import (
	"context"

	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Core types, aliased from the implementation packages so their documented
// fields and methods are part of the public API.
type (
	// Config tunes the OTEM controller (horizon, Eq. 19 weights, …).
	Config = core.Config
	// OTEM is the model-predictive controller (implements Controller).
	OTEM = core.OTEM
	// PlantConfig selects the experimental system (pack topology,
	// ultracapacitor size, initial conditions).
	PlantConfig = sim.PlantConfig
	// Plant is the simulated physical system.
	Plant = sim.Plant
	// Controller is the driving-time decision interface shared by OTEM and
	// the baselines.
	Controller = sim.Controller
	// Result summarises one simulated route (Algorithm 1 outputs).
	Result = sim.Result
	// Trace holds per-step signals when tracing is enabled.
	Trace = sim.Trace
	// RunSpec names a canned experiment run (methodology × cycle × size).
	RunSpec = experiments.RunSpec
	// VehicleParams is the EV road-load model used to derive power requests.
	VehicleParams = vehicle.Params
)

// Methodology is the typed name of a compared energy-management strategy.
// Untyped string literals convert implicitly, so Methodology("OTEM") and
// MethodologyOTEM are interchangeable.
type Methodology = policy.Methodology

// The four methodologies of the paper's evaluation (§IV).
const (
	// MethodologyParallel is the passive battery‖ultracapacitor baseline.
	MethodologyParallel = policy.MethodologyParallel
	// MethodologyCooling is the battery with threshold-triggered cooling.
	MethodologyCooling = policy.MethodologyCooling
	// MethodologyDual combines the parallel HEES with threshold cooling.
	MethodologyDual = policy.MethodologyDual
	// MethodologyOTEM is the paper's model-predictive controller.
	MethodologyOTEM = policy.MethodologyOTEM
)

// Methodologies lists the compared methodologies in presentation order.
func Methodologies() []Methodology { return experiments.Methods() }

// Sentinel errors, matchable with errors.Is through any wrapping the
// package applies.
var (
	// ErrUnknownCycle reports a drive-cycle name CycleByName (and everything
	// built on it) does not know.
	ErrUnknownCycle = drivecycle.ErrUnknown
	// ErrUnknownBaseline reports a methodology or baseline name Baseline and
	// ControllerFor do not know.
	ErrUnknownBaseline = policy.ErrUnknown
	// ErrCanceled reports that a context-aware run was canceled before
	// completing; errors.Is also matches the causing ctx.Err().
	ErrCanceled = runner.ErrCanceled
)

// DefaultConfig returns the controller configuration used for the paper
// experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// New constructs the OTEM controller. A zero Config selects DefaultConfig.
func New(cfg Config) (*OTEM, error) { return core.New(cfg) }

// NewPlant builds a plant; zero fields of the config take the paper's
// experimental defaults (96S24P NCR18650A pack, 25 kF bank, 298 K).
func NewPlant(cfg PlantConfig) (*Plant, error) { return sim.NewPlant(cfg) }

// Baseline constructs one of the paper's comparison methodologies by name:
// "parallel", "cooling", "dual" or "battery" (canonical Methodology names
// are accepted too, case-insensitively). Unknown names wrap
// ErrUnknownBaseline.
func Baseline(name string) (Controller, error) { return policy.ByName(name) }

// ControllerFor builds a fresh controller for a methodology, including the
// OTEM controller itself (with DefaultConfig) — the typed counterpart of
// Baseline for RunSpec-style code. Controllers are stateful: build one per
// run. Unknown methodologies wrap ErrUnknownBaseline.
func ControllerFor(m Methodology) (Controller, error) {
	if m == MethodologyOTEM {
		return core.New(core.DefaultConfig())
	}
	return policy.ByMethodology(m)
}

// MidSizeEV returns the road-load parameters of the experiments' vehicle.
func MidSizeEV() VehicleParams { return vehicle.MidSizeEV() }

// PowerSeries returns the bus power-request series for a named standard
// drive cycle ("US06", "UDDS", "HWFET", "NYCC", "LA92", "SC03") repeated
// the given number of times, using the MidSizeEV road-load model.
func PowerSeries(cycleName string, repeats int) ([]float64, error) {
	c, err := drivecycle.ByName(cycleName)
	if err != nil {
		return nil, err
	}
	if repeats > 1 {
		c = c.Repeat(repeats)
	}
	return vehicle.MidSizeEV().PowerSeries(c), nil
}

// Simulate runs the power-request series through the plant under the given
// controller (the paper's Algorithm 1) and returns the route summary. The
// plant is mutated in place. It consumes the WithTrace, WithHorizon and
// WithContext options (see Option).
func Simulate(plant *Plant, ctrl Controller, requests []float64, opts ...SimOption) (Result, error) {
	s := newSettings(opts)
	if s.horizon < 1 {
		s.horizon = core.DefaultConfig().Horizon
	}
	return sim.RunContext(s.ctx, plant, ctrl, requests, sim.Config{
		RecordTrace: s.trace,
		Horizon:     s.horizon,
	})
}

// SimulateContext is Simulate with cooperative cancellation: when ctx is
// canceled the simulation abandons mid-route and the returned error
// matches both ErrCanceled and ctx.Err() via errors.Is.
func SimulateContext(ctx context.Context, plant *Plant, ctrl Controller, requests []float64, opts ...SimOption) (Result, error) {
	return Simulate(plant, ctrl, requests, append([]SimOption{WithContext(ctx)}, opts...)...)
}

// Run executes one canned experiment specification (fresh default plant and
// vehicle), as used by the paper-reproduction suite.
func Run(spec RunSpec) (Result, error) { return experiments.Run(spec) }

// RunContext is Run with cooperative cancellation; see SimulateContext for
// the error semantics. RunBatch fans many specs out concurrently.
func RunContext(ctx context.Context, spec RunSpec) (Result, error) {
	return experiments.RunContext(ctx, spec)
}

// CycleNames lists the available standard drive cycles.
func CycleNames() []string { return drivecycle.Names() }

// Cycle is a speed-versus-time trace; obtain standard ones with CycleByName
// or build custom ones with Synthesize.
type Cycle = drivecycle.Cycle

// SynthConfig parameterises the random micro-trip cycle synthesiser.
type SynthConfig = drivecycle.SynthConfig

// CycleByName returns a standard drive cycle ("US06", "UDDS", …). Unknown
// names wrap ErrUnknownCycle.
func CycleByName(name string) (*Cycle, error) { return drivecycle.ByName(name) }

// Synthesize generates a deterministic random drive cycle from the
// configuration (see DefaultSynthConfig).
func Synthesize(cfg SynthConfig) (*Cycle, error) { return drivecycle.Synthesize(cfg) }

// DefaultSynthConfig returns a moderate suburban synthesis profile for the
// given seed.
func DefaultSynthConfig(seed int64) SynthConfig { return drivecycle.DefaultSynthConfig(seed) }

// PowerSeriesFor converts any cycle into a bus power-request series with
// the MidSizeEV road-load model.
func PowerSeriesFor(c *Cycle) []float64 { return vehicle.MidSizeEV().PowerSeries(c) }

// PowerSeriesAt is PowerSeries at an explicit ambient temperature (kelvin):
// the vehicle's HVAC load for that climate is added to every sample.
func PowerSeriesAt(cycleName string, repeats int, ambientK float64) ([]float64, error) {
	c, err := drivecycle.ByName(cycleName)
	if err != nil {
		return nil, err
	}
	if repeats > 1 {
		c = c.Repeat(repeats)
	}
	return vehicle.MidSizeEV().PowerSeriesAt(c, ambientK), nil
}

// LifetimeConfig tunes a routes-to-end-of-life projection.
type LifetimeConfig = lifetime.Config

// LifetimeProjection is the outcome of ProjectLifetime.
type LifetimeProjection = lifetime.Projection

// ProjectLifetime projects the battery to end of life (20 % capacity loss)
// driving the given request series repeatedly under a controller built by
// newController, carrying capacity fade and impedance growth forward. It
// consumes the WithContext, WithHorizon and WithProgress options (progress
// ticks are routes driven, out of LifetimeConfig.MaxRoutes).
func ProjectLifetime(plantCfg PlantConfig, newController func() (Controller, error), requests []float64, cfg LifetimeConfig, opts ...Option) (*LifetimeProjection, error) {
	s := newSettings(opts)
	return projectLifetime(s.ctx, s, plantCfg, newController, requests, cfg)
}

// ProjectLifetimeContext is ProjectLifetime with cooperative cancellation:
// the projection is sequential (each block feeds the accumulated fade
// forward), but canceling ctx aborts the in-flight route simulation with
// an error matching ErrCanceled. The explicit context wins over any
// WithContext option.
func ProjectLifetimeContext(ctx context.Context, plantCfg PlantConfig, newController func() (Controller, error), requests []float64, cfg LifetimeConfig, opts ...Option) (*LifetimeProjection, error) {
	return projectLifetime(ctx, newSettings(opts), plantCfg, newController, requests, cfg)
}

func projectLifetime(ctx context.Context, s settings, plantCfg PlantConfig, newController func() (Controller, error), requests []float64, cfg LifetimeConfig) (*LifetimeProjection, error) {
	if s.horizon > 0 {
		cfg.Horizon = s.horizon
	}
	if s.progress != nil {
		cfg.Progress = s.progress
	}
	return lifetime.ProjectContext(ctx,
		lifetime.DefaultPlantFactory(plantCfg),
		func() (sim.Controller, error) { return newController() },
		requests, cfg)
}

// DSEConfig tunes a design-space exploration; DSEResult carries the grid
// and its Pareto frontier.
type (
	DSEConfig = dse.Config
	DSEResult = dse.Result
)

// ExploreDesigns sweeps ultracapacitor size × cooler capacity under the
// OTEM controller and extracts the cost-vs-capacity-loss Pareto frontier —
// the design-space exploration the paper defers to future work. It
// consumes the WithContext, WithParallelism and WithProgress options
// (progress ticks are grid points).
func ExploreDesigns(cfg DSEConfig, opts ...Option) (*DSEResult, error) {
	s := newSettings(opts)
	return dse.ExploreContext(s.ctx, cfg, s.pool())
}

// ExploreDesignsContext is ExploreDesigns with the context as an explicit
// leading argument (which wins over any WithContext option).
func ExploreDesignsContext(ctx context.Context, cfg DSEConfig, opts ...BatchOption) (*DSEResult, error) {
	return dse.ExploreContext(ctx, cfg, newSettings(opts).pool())
}
