package otem_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/otem"
)

// cheapSpecs returns a small batch of non-MPC runs (NYCC is the shortest
// cycle) so the batch tests stay fast.
func cheapSpecs() []otem.RunSpec {
	return []otem.RunSpec{
		{Method: otem.MethodologyParallel, Cycle: "NYCC"},
		{Method: otem.MethodologyCooling, Cycle: "NYCC"},
		{Method: otem.MethodologyDual, Cycle: "NYCC"},
		{Method: otem.MethodologyParallel, Cycle: "SC03"},
	}
}

func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	specs := cheapSpecs()
	seq, err := otem.RunBatch(context.Background(), specs, otem.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := otem.RunBatch(context.Background(), specs, otem.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("lengths: %d, %d, want %d", len(seq), len(par), len(specs))
	}
	for i := range seq {
		if seq[i].Spec != specs[i] {
			t.Errorf("result %d: spec %+v out of order", i, seq[i].Spec)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("result %d: errs %v, %v", i, seq[i].Err, par[i].Err)
		}
		a, b := seq[i].Result, par[i].Result
		a.Trace, b.Trace = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("result %d differs between parallelism 1 and 8:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestRunBatchPerSpecErrors(t *testing.T) {
	specs := []otem.RunSpec{
		{Method: otem.MethodologyParallel, Cycle: "NYCC"},
		{Method: otem.MethodologyParallel, Cycle: "NOPE"},
		{Method: "Bogus", Cycle: "NYCC"},
	}
	batch, err := otem.RunBatch(context.Background(), specs, otem.WithParallelism(2))
	if err != nil {
		t.Fatalf("batch-level error for per-spec failures: %v", err)
	}
	if batch[0].Err != nil {
		t.Errorf("good spec failed: %v", batch[0].Err)
	}
	if !errors.Is(batch[1].Err, otem.ErrUnknownCycle) {
		t.Errorf("bad cycle: got %v, want ErrUnknownCycle", batch[1].Err)
	}
	if !errors.Is(batch[2].Err, otem.ErrUnknownBaseline) {
		t.Errorf("bad method: got %v, want ErrUnknownBaseline", batch[2].Err)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: nothing should complete
	batch, err := otem.RunBatch(ctx, cheapSpecs())
	if batch != nil {
		t.Errorf("got %d results from canceled batch", len(batch))
	}
	if !errors.Is(err, otem.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled wrapped", err)
	}
}

func TestRunBatchProgress(t *testing.T) {
	specs := cheapSpecs()
	var calls atomic.Int64
	last := 0
	_, err := otem.RunBatch(context.Background(), specs,
		otem.WithParallelism(4),
		otem.WithProgress(func(done, total int) {
			calls.Add(1)
			if done != last+1 || total != len(specs) {
				t.Errorf("progress(%d, %d) after done=%d", done, total, last)
			}
			last = done
		}))
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(specs) {
		t.Errorf("progress called %d times, want %d", calls.Load(), len(specs))
	}
}

func TestRunBatchEmpty(t *testing.T) {
	batch, err := otem.RunBatch(context.Background(), nil)
	if err != nil || len(batch) != 0 {
		t.Fatalf("empty batch: %v, %v", batch, err)
	}
}

func TestSimulateContextCancel(t *testing.T) {
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := otem.Baseline("parallel")
	if err != nil {
		t.Fatal(err)
	}
	requests, err := otem.PowerSeries("NYCC", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := otem.SimulateContext(ctx, plant, ctrl, requests); !errors.Is(err, otem.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestSentinelRoundTrips(t *testing.T) {
	if _, err := otem.CycleByName("NOPE"); !errors.Is(err, otem.ErrUnknownCycle) {
		t.Errorf("CycleByName: %v", err)
	}
	if _, err := otem.PowerSeries("NOPE", 1); !errors.Is(err, otem.ErrUnknownCycle) {
		t.Errorf("PowerSeries: %v", err)
	}
	if _, err := otem.Baseline("NOPE"); !errors.Is(err, otem.ErrUnknownBaseline) {
		t.Errorf("Baseline: %v", err)
	}
	if _, err := otem.ControllerFor("NOPE"); !errors.Is(err, otem.ErrUnknownBaseline) {
		t.Errorf("ControllerFor: %v", err)
	}
	if _, err := otem.RunContext(context.Background(), otem.RunSpec{Cycle: "NOPE"}); !errors.Is(err, otem.ErrUnknownCycle) {
		t.Errorf("RunContext: %v", err)
	}
}

func TestControllerFor(t *testing.T) {
	for _, m := range otem.Methodologies() {
		ctrl, err := otem.ControllerFor(m)
		if err != nil || ctrl == nil {
			t.Errorf("ControllerFor(%s): %v", m, err)
			continue
		}
		if ctrl.Name() != string(m) {
			t.Errorf("ControllerFor(%s).Name() = %q", m, ctrl.Name())
		}
	}
}

func TestFunctionalOptions(t *testing.T) {
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := otem.ControllerFor(otem.MethodologyParallel)
	if err != nil {
		t.Fatal(err)
	}
	requests, err := otem.PowerSeries("NYCC", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, requests, otem.WithTrace(), otem.WithHorizon(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Error("WithTrace: trace missing")
	}

	// The deprecated struct must behave identically through the shim.
	plant2, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, err := otem.ControllerFor(otem.MethodologyParallel)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := otem.Simulate(plant2, ctrl2, requests, otem.SimOptions{RecordTrace: true, Horizon: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace == nil {
		t.Error("SimOptions shim: trace missing")
	}
	if res.QlossPct != res2.QlossPct || res.Steps != res2.Steps {
		t.Errorf("options vs shim diverged: %+v vs %+v", res.QlossPct, res2.QlossPct)
	}
}

func TestExploreDesignsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := otem.ExploreDesignsContext(ctx, otem.DSEConfig{
		UltracapSizesF: []float64{10000},
		CoolerPowersW:  []float64{4e3},
		Cycle:          "NYCC",
		Repeats:        1,
	})
	if !errors.Is(err, otem.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}
