// Package otem is the public API of the OTEM reproduction: optimized
// thermal and energy management for hybrid electrical energy storage in
// electric vehicles (Vatanparvar & Al Faruque, DATE 2016).
//
// The package re-exports the stable surface of the internal packages:
//
//   - construct a plant (battery pack + ultracapacitor + converters +
//     active cooling loop) with NewPlant,
//   - construct the OTEM model-predictive controller with New, or a
//     state-of-the-art baseline with Baseline or ControllerFor,
//   - obtain EV power-request series from standard drive cycles with
//     PowerSeries,
//   - simulate a route with Simulate / SimulateContext, run a canned paper
//     experiment with Run / RunContext, or fan a whole grid of experiments
//     out on the bounded worker pool with RunBatch,
//   - roll a Monte Carlo fleet of seeded stochastic vehicle scenarios into
//     streaming quantile sketches with RunFleet,
//   - run the two-layer hierarchical MPC with SimulateHierarchical, or
//     solve just its cacheable outer route plan with PlanRoute.
//
// A minimal session:
//
//	requests, _ := otem.PowerSeries("US06", 5)
//	plant, _ := otem.NewPlant(otem.PlantConfig{})
//	ctrl, _ := otem.New(otem.DefaultConfig())
//	res, _ := otem.Simulate(plant, ctrl, requests, otem.WithTrace())
//	fmt.Println(res.QlossPct, res.AvgPowerW)
//
// # Batch runs
//
// RunBatch executes many RunSpecs concurrently on a bounded worker pool
// and returns one BatchResult per spec, in spec order, regardless of
// parallelism — results are bit-identical at -parallel 1 and -parallel N:
//
//	specs := []otem.RunSpec{
//		{Method: otem.MethodologyParallel, Cycle: "US06", Repeats: 3},
//		{Method: otem.MethodologyOTEM, Cycle: "US06", Repeats: 3},
//	}
//	batch, err := otem.RunBatch(ctx, specs,
//		otem.WithParallelism(4),
//		otem.WithProgress(func(done, total int) {
//			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
//		}))
//
// A spec that fails (unknown cycle, diverged simulation, …) records its
// error in its BatchResult.Err without aborting the rest of the batch.
// Only cancellation aborts the whole batch: when ctx is canceled RunBatch
// stops dispatching, in-flight simulations abandon mid-route, and the
// returned error matches ErrCanceled via errors.Is.
//
// # Fleet Monte Carlo
//
// RunFleet steps a fleet of vehicles through per-vehicle seeded scenarios
// (usage class, climate band, synthesized daily routes, plug-in and
// vacation behaviour) and aggregates the outcomes into constant-memory
// quantile sketches — memory stays O(workers) however large the fleet:
//
//	res, err := otem.RunFleet(ctx,
//		otem.FleetSpec{Vehicles: 10000, Seed: 42, Method: otem.MethodologyParallel},
//		otem.WithParallelism(8))
//	fmt.Println(res.Qloss.Quantile(0.95), res.Digest())
//
// The same spec and seed produce a bit-identical result (same Digest, same
// otem.fleet/v1 JSON from EncodeFleet) at any parallelism. Each worker
// rolls its vehicles in structure-of-arrays batches with vectorized
// lockstep bus solves; WithFleetBatch selects the lane width (0 = auto,
// negative = the per-vehicle reference path) without changing a single
// bit of the result.
//
// # Two-layer hierarchical MPC
//
// SimulateHierarchical runs a route-preview scheduling layer over the
// fast OTEM tracker, after the hierarchical EMS literature
// (arXiv:1809.10002). The outer planner sees only a segment-level
// preview of the route — block-averaged power derived from speeds,
// grades and ambient — and schedules SoC/pack-temperature reference
// trajectories; the inner controller tracks them and forces an early
// outer replan when the realized state diverges past the spec's
// tolerances:
//
//	res, err := otem.SimulateHierarchical(ctx,
//		otem.PlanSpec{Cycle: "UDDS", AmbientK: 308})
//	fmt.Println(res.Plan.Blocks, res.OuterReplans, res.DivergenceReplans)
//
// PlanRoute solves only the outer layer; EncodePlan renders the
// golden-pinned otem.plan/v1 schema the serve subsystem caches under the
// spec's canonical encoding. A PlanSpec with MaxBlocks 1 and negative
// tracking weights and tolerances (negative = explicitly off; zero means
// "use the default") collapses the stack to the flat controller bit for
// bit — the identity is property-tested on every registered cycle.
// Validation failures wrap ErrBadPlanSpec.
//
// # Options
//
// All run entry points accept the same functional Option values —
// WithTrace, WithHorizon, WithContext, WithParallelism, WithProgress.
// Each entry point consumes the options that apply to it and ignores the
// rest, so one option slice can parameterise a Simulate, a RunBatch and a
// RunFleet alike. SimOption and BatchOption are aliases of Option.
//
// # Canonical spec encoding
//
// RunSpec, DSEConfig, LifetimeConfig and FleetSpec implement
// CanonicalSpec; Canonical(spec) renders the versioned, default-resolved
// string identity used for serve cache keys, fleet digests and the spec
// field of JSON results.
//
// # Context and cancellation
//
// Every long-running entry point has a Context variant — SimulateContext,
// RunContext, RunBatch, ExploreDesignsContext, ProjectLifetimeContext —
// that checks ctx between simulation steps and returns an error wrapping
// both ErrCanceled and ctx.Err(). The plain variants are equivalent to
// passing context.Background().
//
// # Errors
//
// Failures from name lookups and cancellation wrap the package's sentinel
// errors, so callers can branch with errors.Is:
//
//	if _, err := otem.CycleByName(name); errors.Is(err, otem.ErrUnknownCycle) { … }
//	if _, err := otem.Baseline(name); errors.Is(err, otem.ErrUnknownBaseline) { … }
//	if err := doBatch(ctx); errors.Is(err, otem.ErrCanceled) { … }
//
// # Migration from SimOptions
//
// Simulate historically took a variadic SimOptions struct. It now takes
// functional options; the struct still satisfies the SimOption interface,
// so existing call sites keep compiling, but new code should write
//
//	otem.Simulate(plant, ctrl, requests, otem.WithTrace(), otem.WithHorizon(16))
//
// instead of otem.Simulate(plant, ctrl, requests, otem.SimOptions{…}).
package otem
