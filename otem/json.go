package otem

// This file defines the stable wire schema for simulation results. It is
// the single JSON encoding of a Result: cmd/otem-sim -json, the otem-serve
// HTTP API and any future exporter all emit ResultJSON, so the schema
// cannot drift between surfaces. The field set, the json tags and the
// Schema version string are covered by a golden-file test; changing any of
// them is a wire-format break and must bump ResultSchemaVersion.

// ResultSchemaVersion identifies the wire format emitted by EncodeResult.
// Consumers should check it before decoding: a different value means the
// field set changed incompatibly.
const ResultSchemaVersion = "otem.result/v1"

// ResultJSON is the stable JSON encoding of a Result. Unit-bearing fields
// carry the unit in the name (joules, watts, kelvin, seconds) so the wire
// format is self-describing; fractions (SoC/SoE) are 0..1.
type ResultJSON struct {
	// Schema is always ResultSchemaVersion.
	Schema string `json:"schema"`
	// Controller is the methodology name that produced the run.
	Controller string `json:"controller"`
	// Steps is the number of simulated steps; DTSeconds their length.
	Steps     int     `json:"steps"`
	DTSeconds float64 `json:"dt_seconds"`

	// QlossPct is the battery capacity loss, percent of rated capacity.
	QlossPct float64 `json:"qloss_pct"`
	// HEESEnergyJoule is the total HEES consumption including losses.
	HEESEnergyJoule float64 `json:"hees_energy_joule"`
	// CoolingEnergyJoule is the cooling subsystem's share.
	CoolingEnergyJoule float64 `json:"cooling_energy_joule"`
	// AvgPowerWatt is HEES energy over route duration (Fig. 9 metric).
	AvgPowerWatt float64 `json:"avg_power_watt"`
	// MaxBatteryTempKelvin / AvgBatteryTempKelvin summarise T_b.
	MaxBatteryTempKelvin float64 `json:"max_battery_temp_kelvin"`
	AvgBatteryTempKelvin float64 `json:"avg_battery_temp_kelvin"`
	// ThermalViolationSeconds counts time above the C1 safe limit.
	ThermalViolationSeconds float64 `json:"thermal_violation_seconds"`
	// FallbackSteps counts infeasible-action steps resolved by the
	// battery-path fallback.
	FallbackSteps int `json:"fallback_steps"`
	// FinalSoC / FinalSoE are the terminal storage states, fractions.
	FinalSoC float64 `json:"final_soc"`
	FinalSoE float64 `json:"final_soe"`

	// Trace holds the per-step signals when tracing was enabled, else it
	// is omitted.
	Trace []TraceStepJSON `json:"trace,omitempty"`
}

// TraceStepJSON is one per-step sample of a trace, in the same stable
// schema (otem-serve streams these as NDJSON lines).
type TraceStepJSON struct {
	// TimeSeconds is the step start time.
	TimeSeconds float64 `json:"time_seconds"`
	// PowerRequestWatt is the bus power request P_e.
	PowerRequestWatt float64 `json:"power_request_watt"`
	// BatteryTempKelvin / CoolantTempKelvin are T_b and T_f.
	BatteryTempKelvin float64 `json:"battery_temp_kelvin"`
	CoolantTempKelvin float64 `json:"coolant_temp_kelvin"`
	// SoC / SoE are the storage states, fractions.
	SoC float64 `json:"soc"`
	SoE float64 `json:"soe"`
	// CoolerPowerWatt is the cooling-system electrical draw.
	CoolerPowerWatt float64 `json:"cooler_power_watt"`
	// BatteryPowerWatt / CapPowerWatt are the storage terminal powers.
	BatteryPowerWatt float64 `json:"battery_power_watt"`
	CapPowerWatt     float64 `json:"cap_power_watt"`
	// BatteryHeatWatt is the internal heat generation Q_b.
	BatteryHeatWatt float64 `json:"battery_heat_watt"`
}

// EncodeResult converts a Result into the stable wire schema, including
// the per-step trace when the run recorded one.
func EncodeResult(r Result) ResultJSON {
	return ResultJSON{
		Schema:                  ResultSchemaVersion,
		Controller:              r.Controller,
		Steps:                   r.Steps,
		DTSeconds:               r.DT,
		QlossPct:                r.QlossPct,
		HEESEnergyJoule:         r.HEESEnergyJ,
		CoolingEnergyJoule:      r.CoolingEnergyJ,
		AvgPowerWatt:            r.AvgPowerW,
		MaxBatteryTempKelvin:    r.MaxBatteryTemp,
		AvgBatteryTempKelvin:    r.AvgBatteryTemp,
		ThermalViolationSeconds: r.ThermalViolationSec,
		FallbackSteps:           r.FallbackSteps,
		FinalSoC:                r.FinalSoC,
		FinalSoE:                r.FinalSoE,
		Trace:                   EncodeTrace(r.Trace),
	}
}

// EncodeTrace converts a trace into per-step wire records, nil in and nil
// out. The column slices of a Trace always have equal length.
func EncodeTrace(tr *Trace) []TraceStepJSON {
	if tr == nil {
		return nil
	}
	steps := make([]TraceStepJSON, len(tr.Time))
	for i := range tr.Time {
		steps[i] = TraceStepJSON{
			TimeSeconds:       tr.Time[i],
			PowerRequestWatt:  tr.PowerRequest[i],
			BatteryTempKelvin: tr.BatteryTemp[i],
			CoolantTempKelvin: tr.CoolantTemp[i],
			SoC:               tr.SoC[i],
			SoE:               tr.SoE[i],
			CoolerPowerWatt:   tr.CoolerPower[i],
			BatteryPowerWatt:  tr.BatteryPower[i],
			CapPowerWatt:      tr.CapPower[i],
			BatteryHeatWatt:   tr.BatteryHeat[i],
		}
	}
	return steps
}
