package otem_test

import (
	"testing"

	"repro/otem"
)

func TestPowerSeries(t *testing.T) {
	one, err := otem.PowerSeries("US06", 1)
	if err != nil {
		t.Fatal(err)
	}
	five, err := otem.PowerSeries("US06", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(five) != 5*len(one) {
		t.Errorf("repeat: %d vs %d", len(five), len(one))
	}
	if _, err := otem.PowerSeries("NOPE", 1); err == nil {
		t.Error("unknown cycle accepted")
	}
}

func TestCycleNames(t *testing.T) {
	names := otem.CycleNames()
	if len(names) != 6 {
		t.Fatalf("CycleNames() = %v", names)
	}
	for _, n := range names {
		if _, err := otem.CycleByName(n); err != nil {
			t.Errorf("CycleByName(%q): %v", n, err)
		}
	}
}

func TestBaselines(t *testing.T) {
	for _, n := range []string{"parallel", "cooling", "dual", "battery"} {
		c, err := otem.Baseline(n)
		if err != nil || c == nil {
			t.Errorf("Baseline(%q): %v", n, err)
		}
	}
	if _, err := otem.Baseline("x"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := otem.Baseline("parallel")
	if err != nil {
		t.Fatal(err)
	}
	requests, err := otem.PowerSeries("NYCC", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, requests, otem.SimOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != len(requests) {
		t.Errorf("steps = %d, want %d", res.Steps, len(requests))
	}
	if res.Trace == nil {
		t.Error("trace missing despite RecordTrace")
	}
	if res.QlossPct <= 0 {
		t.Error("no aging recorded")
	}
}

func TestOTEMControllerViaFacade(t *testing.T) {
	cfg := otem.DefaultConfig()
	cfg.Horizon = 16
	cfg.BlockSize = 4
	cfg.ReplanInterval = 4
	cfg.Optimizer.MaxIterations = 10
	ctrl, err := otem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "OTEM" {
		t.Errorf("Name = %q", ctrl.Name())
	}
	plant, err := otem.NewPlant(otem.PlantConfig{UltracapF: 10000})
	if err != nil {
		t.Fatal(err)
	}
	requests := make([]float64, 60)
	for i := range requests {
		requests[i] = 15e3
	}
	res, err := otem.Simulate(plant, ctrl, requests, otem.SimOptions{Horizon: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoC >= 1 {
		t.Error("load not served")
	}
}

func TestSynthesizeViaFacade(t *testing.T) {
	c, err := otem.Synthesize(otem.DefaultSynthConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	series := otem.PowerSeriesFor(c)
	if len(series) != c.Samples() {
		t.Errorf("series length %d vs %d samples", len(series), c.Samples())
	}
}

func TestRunCannedExperiment(t *testing.T) {
	res, err := otem.Run(otem.RunSpec{Method: "Dual", Cycle: "SC03"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "Dual" {
		t.Errorf("controller = %q", res.Controller)
	}
}

func TestMidSizeEVValid(t *testing.T) {
	if err := otem.MidSizeEV().Validate(); err != nil {
		t.Fatal(err)
	}
}
