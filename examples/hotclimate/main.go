// Hotclimate: the paper's §I premise — the HEES alone cannot keep the
// battery safe — demonstrated across ambient temperatures.
//
// The same LA92 route is driven in mild, warm and desert-summer ambients.
// Without active cooling (dual architecture) the safe zone is violated as
// the ambient climbs; OTEM engages its cooler progressively and holds the
// battery inside the safe zone everywhere, at a visible but bounded power
// premium.
package main

import (
	"fmt"
	"log"

	"repro/otem"
)

func main() {
	log.SetFlags(0)

	ambients := []float64{20, 30, 38} // °C
	fmt.Printf("%-12s | %12s %12s %12s | %12s %12s %12s\n",
		"ambient °C", "dual maxT", "dual viol s", "dual P̄ W", "OTEM maxT", "OTEM viol s", "OTEM P̄ W")

	for _, amb := range ambients {
		// The request series itself depends on the climate: HVAC load.
		requests, err := otem.PowerSeriesAt("LA92", 2, amb+273.15)
		if err != nil {
			log.Fatal(err)
		}
		dualCtrl, err := otem.Baseline("dual")
		if err != nil {
			log.Fatal(err)
		}
		dual := run(dualCtrl, amb, requests)

		otemCtrl, err := otem.New(otem.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		managed := run(otemCtrl, amb, requests)

		fmt.Printf("%-12.0f | %12.1f %12.0f %12.0f | %12.1f %12.0f %12.0f\n",
			amb,
			dual.MaxBatteryTemp-273.15, dual.ThermalViolationSec, dual.AvgPowerW,
			managed.MaxBatteryTemp-273.15, managed.ThermalViolationSec, managed.AvgPowerW)
	}
	fmt.Println("\nthe dual architecture loses the safe zone as ambient rises;")
	fmt.Println("OTEM spends cooler power only where the climate demands it.")
}

func run(ctrl otem.Controller, ambientC float64, requests []float64) otem.Result {
	plant, err := otem.NewPlant(otem.PlantConfig{
		InitialTemp: ambientC + 273.15,
		Ambient:     ambientC + 273.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, requests)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
