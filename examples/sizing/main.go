// Sizing: the Table-I design question from a buyer's perspective.
//
// Ultracapacitors are the expensive part of an HEES (the paper quotes
// ≈$12,000 for 20,000 F). This example sweeps bank sizes under the Dual and
// OTEM methodologies on US06 and shows the paper's conclusion directly:
// with OTEM, shrinking the bank barely hurts — the cooler substitutes for
// the missing capacitance — so the designer can buy the small bank.
package main

import (
	"fmt"
	"log"

	"repro/otem"
)

// costPerFarad follows the paper's ≈$12,000 / 20,000 F figure.
const costPerFarad = 0.6

func main() {
	log.SetFlags(0)

	requests, err := otem.PowerSeries("US06", 3)
	if err != nil {
		log.Fatal(err)
	}

	sizes := []float64{5000, 10000, 20000, 25000}
	fmt.Printf("%-10s %10s | %14s %14s | %14s %14s\n",
		"size (F)", "bank $", "Dual loss %", "Dual P̄ (W)", "OTEM loss %", "OTEM P̄ (W)")

	for _, size := range sizes {
		dual := runOne(t("dual"), size, requests)
		ot := runOne(nil, size, requests)
		fmt.Printf("%-10.0f %10.0f | %14.5f %14.0f | %14.5f %14.0f\n",
			size, size*costPerFarad,
			dual.QlossPct, dual.AvgPowerW,
			ot.QlossPct, ot.AvgPowerW)
	}
	fmt.Println("\nOTEM keeps capacity loss nearly flat across sizes (paper Table I):")
	fmt.Println("the active cooling system substitutes for the missing capacitance,")
	fmt.Printf("so the $%.0f small bank is viable under OTEM.\n", sizes[0]*costPerFarad)
}

// t returns the named baseline, terminating on error.
func t(name string) otem.Controller {
	c, err := otem.Baseline(name)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// runOne simulates one (controller, size) pair; a nil controller selects a
// fresh OTEM instance.
func runOne(ctrl otem.Controller, size float64, requests []float64) otem.Result {
	if ctrl == nil {
		var err error
		ctrl, err = otem.New(otem.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
	}
	plant, err := otem.NewPlant(otem.PlantConfig{UltracapF: size})
	if err != nil {
		log.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, requests)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
