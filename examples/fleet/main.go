// Fleet: a fleet operator's view through the Monte Carlo simulator.
//
// otem.RunFleet rolls every vehicle through its own seeded scenario —
// usage class (commuter / delivery / highway), climate band, synthesized
// daily routes, overnight plug-in behaviour and the occasional vacation —
// and aggregates the outcomes into streaming quantile sketches, so the
// result describes the *distribution* of battery wear across the fleet,
// not one idealised vehicle. The same seed gives a bit-identical result at
// any worker count.
//
// The example first surveys a large fleet under the passive parallel
// architecture, then re-rolls a smaller fleet head-to-head under Parallel
// and OTEM on identical scenarios (same seed) to show the management gain
// at the distribution level: the tail (p95) tightens, not just the median.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/otem"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A week of a 2 000-vehicle mixed fleet under the unmanaged parallel
	// architecture. One option slice parameterises every run in this
	// program — entry points consume what applies and ignore the rest.
	opts := []otem.Option{
		otem.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rrolling fleet %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}),
	}

	survey := otem.FleetSpec{
		Vehicles:     2000,
		Days:         5,
		Seed:         2026,
		Method:       otem.MethodologyParallel,
		RouteSeconds: 300,
	}
	res, err := otem.RunFleet(ctx, survey, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %d vehicles × %d days, %s (digest %s)\n\n",
		res.Vehicles, res.Days, survey.Method, res.Digest())
	fmt.Printf("capacity loss, %% of rated capacity:\n")
	fmt.Printf("  p05 %.5f   median %.5f   p95 %.5f   worst %.5f\n",
		res.Qloss.Quantile(0.05), res.Qloss.Quantile(0.5),
		res.Qloss.Quantile(0.95), res.Qloss.Max())
	fmt.Printf("wall energy per vehicle: median %.1f MJ   p95 %.1f MJ\n",
		res.EnergyJ.Quantile(0.5)/1e6, res.EnergyJ.Quantile(0.95)/1e6)
	fmt.Printf("peak battery temperature: median %.1f °C   p95 %.1f °C\n\n",
		res.PeakTempK.Quantile(0.5)-273.15, res.PeakTempK.Quantile(0.95)-273.15)

	fmt.Printf("wear by scenario family (median capacity loss, %%):\n")
	for _, f := range res.Families {
		if f.Vehicles == 0 {
			continue
		}
		fmt.Printf("  %-22s %5d vehicles   %.5f\n", f.Name, f.Vehicles, f.Qloss.Quantile(0.5))
	}

	// Head-to-head on identical scenarios: same seed, same fleet shape,
	// only the energy-management policy differs. OTEM replans an MPC every
	// few steps, so the head-to-head fleet is kept small.
	duel := otem.FleetSpec{
		Vehicles:     30,
		Seed:         7,
		Method:       otem.MethodologyParallel,
		RouteSeconds: 300,
	}
	base, err := otem.RunFleet(ctx, duel, opts...)
	if err != nil {
		log.Fatal(err)
	}
	duel.Method = otem.MethodologyOTEM
	managed, err := otem.RunFleet(ctx, duel, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n== same %d scenarios, Parallel vs OTEM\n", duel.Vehicles)
	fmt.Printf("%-26s %12s %12s\n", "capacity loss (%)", "Parallel", "OTEM")
	for _, q := range []struct {
		label string
		phi   float64
	}{{"median", 0.5}, {"p95 (fleet tail)", 0.95}} {
		fmt.Printf("%-26s %12.5f %12.5f\n", q.label,
			base.Qloss.Quantile(q.phi), managed.Qloss.Quantile(q.phi))
	}
	fmt.Printf("%-26s %12.1f %12.1f\n", "peak temp p95 (°C)",
		base.PeakTempK.Quantile(0.95)-273.15, managed.PeakTempK.Quantile(0.95)-273.15)
	fmt.Printf("%-26s %12.0f %12.0f\n", "thermal violation (s)",
		base.ThermalViolationSec, managed.ThermalViolationSec)
}
