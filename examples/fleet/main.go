// Fleet: a fleet operator's view of the paper's battery-lifetime claim.
//
// A delivery fleet drives the LA92 urban cycle all day. The example projects
// each vehicle's pack to end of life (20 % capacity loss) under the
// unmanaged parallel architecture versus OTEM, carrying the fade and
// impedance growth forward, and converts the difference into fleet-level
// replacement economics.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/drivecycle"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

const (
	fleetSize       = 50
	routesPerDay    = 6
	daysPerYear     = 300
	packCostDollars = 9000
)

func main() {
	log.SetFlags(0)

	cycle, err := drivecycle.ByName("LA92")
	if err != nil {
		log.Fatal(err)
	}
	route := cycle.Repeat(2)
	requests := vehicle.MidSizeEV().PowerSeries(route)
	routeKm := route.Stats().Distance / 1000
	cfg := lifetime.Config{BlockRoutes: 3000, RouteKm: routeKm}

	parallel, err := lifetime.Project(
		lifetime.DefaultPlantFactory(sim.PlantConfig{}),
		func() (sim.Controller, error) { return policy.Parallel{}, nil },
		requests, cfg)
	if err != nil {
		log.Fatal(err)
	}
	managed, err := lifetime.Project(
		lifetime.DefaultPlantFactory(sim.PlantConfig{}),
		func() (sim.Controller, error) { return core.New(core.DefaultConfig()) },
		requests, cfg)
	if err != nil {
		log.Fatal(err)
	}

	parallel.Write(os.Stdout, "Parallel, LA92 ×2 per route")
	fmt.Println()
	managed.Write(os.Stdout, "OTEM, LA92 ×2 per route")
	fmt.Println()

	years := func(routes int) float64 {
		return float64(routes) / (routesPerDay * daysPerYear)
	}
	fmt.Printf("pack life: parallel %.1f yr, OTEM %.1f yr (+%.0f %%)\n",
		years(parallel.RoutesToEOL), years(managed.RoutesToEOL),
		100*(float64(managed.RoutesToEOL)/float64(parallel.RoutesToEOL)-1))

	// Replacement cadence over a 10-year fleet horizon.
	replacements := func(lifeYears float64) float64 { return 10/lifeYears - 1 }
	rp := replacements(years(parallel.RoutesToEOL))
	ro := replacements(years(managed.RoutesToEOL))
	if rp < 0 {
		rp = 0
	}
	if ro < 0 {
		ro = 0
	}
	saved := (rp - ro) * packCostDollars * fleetSize
	fmt.Printf("10-year fleet of %d: %.1f vs %.1f replacements/vehicle → $%.0f saved\n",
		fleetSize, rp, ro, saved)
}
