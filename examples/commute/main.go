// Commute: project battery lifetime for a realistic daily-commute scenario.
//
// A commuter drives a synthetic 30-minute suburban route twice a day. The
// example compares how long the pack lasts (years until 20 % capacity loss,
// the paper's end-of-life criterion) under each methodology, and what the
// annual energy bill difference looks like.
package main

import (
	"fmt"
	"log"

	"repro/otem"
)

const (
	commutesPerDay  = 2
	daysPerYear     = 250
	endOfLifePct    = 20.0 // paper §I: battery useless after 20 % loss
	electricityCost = 0.15 // $/kWh
)

func main() {
	log.SetFlags(0)

	// A deterministic synthetic commute: ~30 min suburban driving.
	cfg := otem.DefaultSynthConfig(2016)
	cfg.Name = "COMMUTE"
	cfg.TargetDuration = 1800
	cfg.MeanPeakKmh = 70
	cycle, err := otem.Synthesize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	requests := otem.PowerSeriesFor(cycle)
	stats := cycle.Stats()
	fmt.Printf("commute: %.0f s, %.1f km, avg %.0f km/h\n\n",
		stats.Duration, stats.Distance/1000, stats.AvgSpeed*3.6)

	fmt.Printf("%-12s %14s %16s %14s %16s\n",
		"methodology", "loss/commute", "pack life (yr)", "kWh/commute", "energy $/yr")
	for _, name := range []string{"parallel", "dual", "cooling"} {
		ctrl, err := otem.Baseline(name)
		if err != nil {
			log.Fatal(err)
		}
		report(name, ctrl, requests)
	}
	ctrl, err := otem.New(otem.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("OTEM", ctrl, requests)
}

func report(name string, ctrl otem.Controller, requests []float64) {
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := otem.Simulate(plant, ctrl, requests)
	if err != nil {
		log.Fatal(err)
	}
	commutes := endOfLifePct / res.QlossPct
	years := commutes / (commutesPerDay * daysPerYear)
	kwh := res.HEESEnergyJ / 3.6e6
	dollarsPerYear := kwh * electricityCost * commutesPerDay * daysPerYear
	fmt.Printf("%-12s %13.5f%% %16.1f %14.2f %16.0f\n",
		name, res.QlossPct, years, kwh, dollarsPerYear)
}
