// Quickstart: run the OTEM controller over the aggressive US06 cycle and
// print the metrics the paper reports — capacity loss, average power and
// battery temperature — next to the management-free parallel baseline.
package main

import (
	"fmt"
	"log"

	"repro/otem"
)

func main() {
	log.SetFlags(0)

	// EV power requests: US06 driven five times (the paper's Fig. 6/7
	// workload).
	requests, err := otem.PowerSeries("US06", 5)
	if err != nil {
		log.Fatal(err)
	}

	// The OTEM methodology: hybrid HEES + active cooling + MPC.
	plant, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := otem.New(otem.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	managed, err := otem.Simulate(plant, ctrl, requests)
	if err != nil {
		log.Fatal(err)
	}

	// The unmanaged baseline on an identical fresh plant.
	plant2, err := otem.NewPlant(otem.PlantConfig{})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := otem.Baseline("parallel")
	if err != nil {
		log.Fatal(err)
	}
	unmanaged, err := otem.Simulate(plant2, baseline, requests)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("US06 ×5, 25 kF ultracapacitor, 96S24P NCR18650A pack")
	fmt.Printf("%-22s %14s %14s\n", "", "OTEM", "Parallel")
	fmt.Printf("%-22s %13.5f%% %13.5f%%\n", "capacity loss", managed.QlossPct, unmanaged.QlossPct)
	fmt.Printf("%-22s %13.0f W %13.0f W\n", "average power", managed.AvgPowerW, unmanaged.AvgPowerW)
	fmt.Printf("%-22s %13.1f °C %13.1f °C\n", "peak battery temp",
		managed.MaxBatteryTemp-273.15, unmanaged.MaxBatteryTemp-273.15)
	fmt.Printf("%-22s %13.0f s %13.0f s\n", "time above 40 °C",
		managed.ThermalViolationSec, unmanaged.ThermalViolationSec)
	fmt.Printf("\nbattery lifetime extension vs parallel: %.1f %%\n",
		managed.LifetimeExtensionPct(unmanaged))
}
