// Batch: fan a grid of methodology × cycle runs out on the bounded worker
// pool through the public API. RunBatch returns one result per spec, in
// spec order regardless of parallelism; Ctrl-C cancels the whole batch
// mid-simulation.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/otem"
)

func main() {
	log.SetFlags(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var specs []otem.RunSpec
	for _, cycle := range []string{"UDDS", "NYCC", "SC03"} {
		for _, m := range []otem.Methodology{otem.MethodologyParallel, otem.MethodologyDual} {
			specs = append(specs, otem.RunSpec{Method: m, Cycle: cycle, Repeats: 2})
		}
	}

	batch, err := otem.RunBatch(ctx, specs,
		otem.WithParallelism(4),
		otem.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	if err != nil {
		if errors.Is(err, otem.ErrCanceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-10s %12s %12s\n", "method", "cycle", "loss (%)", "avg P (W)")
	for _, br := range batch {
		if br.Err != nil {
			fmt.Printf("%-10s %-10s failed: %v\n", br.Spec.Method, br.Spec.Cycle, br.Err)
			continue
		}
		fmt.Printf("%-10s %-10s %12.6f %12.0f\n",
			br.Spec.Method, br.Spec.Cycle, br.Result.QlossPct, br.Result.AvgPowerW)
	}
}
